#include "comm/queue_service.h"

#include "util/coding.h"

namespace rrq::comm {

namespace {

// Wire op codes.
constexpr unsigned char kOpRegister = 1;
constexpr unsigned char kOpDeregister = 2;
constexpr unsigned char kOpEnqueue = 3;
constexpr unsigned char kOpDequeue = 4;
constexpr unsigned char kOpRead = 5;
constexpr unsigned char kOpKill = 6;

void EncodeStatus(const Status& s, std::string* out) {
  util::PutVarint32(out, static_cast<uint32_t>(s.code()));
  util::PutLengthPrefixed(out, s.message());
}

Status DecodeStatus(Slice* input) {
  uint32_t code = 0;
  std::string message;
  if (!util::GetVarint32(input, &code).ok() ||
      !util::GetLengthPrefixedString(input, &message).ok()) {
    return Status::Corruption("malformed status in reply");
  }
  if (code == 0) return Status::OK();
  return Status(static_cast<StatusCode>(code), message);
}

void EncodeElement(const queue::Element& e, std::string* out) {
  util::PutFixed64(out, e.eid);
  util::PutVarint32(out, e.priority);
  util::PutVarint32(out, e.abort_count);
  util::PutLengthPrefixed(out, e.abort_code);
  util::PutLengthPrefixed(out, e.contents);
}

Status DecodeElement(Slice* input, queue::Element* e) {
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &e->eid));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->priority));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->abort_count));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->abort_code));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->contents));
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// QueueService

QueueService::QueueService(Network* network, std::string service_name,
                           queue::QueueRepository* repo)
    : network_(network), service_name_(std::move(service_name)), repo_(repo) {
  Restart();
}

QueueService::~QueueService() { Shutdown(); }

void QueueService::Shutdown() {
  if (up_) {
    network_->RemoveEndpoint(service_name_);
    up_ = false;
  }
}

Status QueueService::Restart() {
  if (up_) return Status::OK();
  RRQ_RETURN_IF_ERROR(network_->RegisterEndpoint(
      service_name_, [this](const Slice& request, std::string* reply) {
        return Handle(request, reply);
      }));
  up_ = true;
  return Status::OK();
}

Status QueueService::Handle(const Slice& request, std::string* reply) {
  Slice input = request;
  if (input.empty()) return Status::InvalidArgument("empty request");
  const unsigned char op = static_cast<unsigned char>(input[0]);
  input.remove_prefix(1);

  std::string queue;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &queue));

  switch (op) {
    case kOpRegister: {
      std::string registrant;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      if (input.empty()) return Status::Corruption("truncated register");
      const bool stable = input[0] != 0;
      auto r = repo_->Register(queue, registrant, stable);
      EncodeStatus(r.status(), reply);
      if (r.ok()) {
        reply->push_back(r->was_registered ? 1 : 0);
        reply->push_back(static_cast<char>(r->last_op));
        util::PutFixed64(reply, r->last_eid);
        util::PutLengthPrefixed(reply, r->last_tag);
        util::PutLengthPrefixed(reply, r->last_element);
      }
      return Status::OK();
    }
    case kOpDeregister: {
      std::string registrant;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      EncodeStatus(repo_->Deregister(queue, registrant), reply);
      return Status::OK();
    }
    case kOpEnqueue: {
      std::string contents, registrant, tag;
      uint32_t priority = 0;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &contents));
      RRQ_RETURN_IF_ERROR(util::GetVarint32(&input, &priority));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &tag));
      auto r = repo_->Enqueue(nullptr, queue, contents, priority, registrant,
                              tag);
      EncodeStatus(r.status(), reply);
      if (r.ok()) util::PutFixed64(reply, *r);
      return Status::OK();
    }
    case kOpDequeue: {
      std::string registrant, tag;
      uint64_t timeout = 0;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &tag));
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &timeout));
      auto r = repo_->Dequeue(nullptr, queue, registrant, tag, timeout);
      EncodeStatus(r.status(), reply);
      if (r.ok()) EncodeElement(*r, reply);
      return Status::OK();
    }
    case kOpRead: {
      uint64_t eid = 0;
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid));
      auto r = repo_->Read(queue, eid);
      EncodeStatus(r.status(), reply);
      if (r.ok()) EncodeElement(*r, reply);
      return Status::OK();
    }
    case kOpKill: {
      uint64_t eid = 0;
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid));
      auto r = repo_->KillElement(nullptr, queue, eid);
      EncodeStatus(r.status(), reply);
      if (r.ok()) reply->push_back(*r ? 1 : 0);
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unknown queue-service op");
  }
}

// ---------------------------------------------------------------------------
// RemoteQueueApi

RemoteQueueApi::RemoteQueueApi(Network* network, std::string self_name,
                               std::string service_name)
    : network_(network),
      self_name_(std::move(self_name)),
      service_name_(std::move(service_name)) {}

Status RemoteQueueApi::CallService(const std::string& request,
                                   std::string* payload) {
  std::string reply;
  RRQ_RETURN_IF_ERROR(
      network_->Call(self_name_, service_name_, request, &reply));
  Slice input(reply);
  Status s = DecodeStatus(&input);
  if (!s.ok()) return s;
  payload->assign(input.data(), input.size());
  return Status::OK();
}

Result<queue::RegistrationInfo> RemoteQueueApi::Register(
    const std::string& queue, const std::string& registrant, bool stable) {
  std::string request;
  request.push_back(static_cast<char>(kOpRegister));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, registrant);
  request.push_back(stable ? 1 : 0);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  if (input.size() < 2) return Status::Corruption("truncated register reply");
  queue::RegistrationInfo info;
  info.was_registered = input[0] != 0;
  info.last_op = static_cast<queue::OpType>(input[1]);
  input.remove_prefix(2);
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &info.last_eid));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &info.last_tag));
  RRQ_RETURN_IF_ERROR(
      util::GetLengthPrefixedString(&input, &info.last_element));
  return info;
}

Status RemoteQueueApi::Deregister(const std::string& queue,
                                  const std::string& registrant) {
  std::string request;
  request.push_back(static_cast<char>(kOpDeregister));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, registrant);
  std::string payload;
  return CallService(request, &payload);
}

Result<queue::ElementId> RemoteQueueApi::Enqueue(
    const std::string& queue, const Slice& contents, uint32_t priority,
    const std::string& registrant, const Slice& tag, bool one_way) {
  std::string request;
  request.push_back(static_cast<char>(kOpEnqueue));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, contents);
  util::PutVarint32(&request, priority);
  util::PutLengthPrefixed(&request, registrant);
  util::PutLengthPrefixed(&request, tag);
  if (one_way) {
    // Fire-and-forget (§5): one message, no eid back, no failure signal.
    RRQ_RETURN_IF_ERROR(
        network_->SendOneWay(self_name_, service_name_, request));
    return queue::kInvalidElementId;
  }
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  uint64_t eid = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid));
  return eid;
}

Result<queue::Element> RemoteQueueApi::Dequeue(const std::string& queue,
                                               const std::string& registrant,
                                               const Slice& tag,
                                               uint64_t timeout_micros) {
  std::string request;
  request.push_back(static_cast<char>(kOpDequeue));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, registrant);
  util::PutLengthPrefixed(&request, tag);
  util::PutFixed64(&request, timeout_micros);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  queue::Element element;
  RRQ_RETURN_IF_ERROR(DecodeElement(&input, &element));
  return element;
}

Result<queue::Element> RemoteQueueApi::Read(const std::string& queue,
                                            queue::ElementId eid) {
  std::string request;
  request.push_back(static_cast<char>(kOpRead));
  util::PutLengthPrefixed(&request, queue);
  util::PutFixed64(&request, eid);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  queue::Element element;
  RRQ_RETURN_IF_ERROR(DecodeElement(&input, &element));
  return element;
}

Result<bool> RemoteQueueApi::KillElement(const std::string& queue,
                                         queue::ElementId eid) {
  std::string request;
  request.push_back(static_cast<char>(kOpKill));
  util::PutLengthPrefixed(&request, queue);
  util::PutFixed64(&request, eid);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  if (payload.empty()) return Status::Corruption("truncated kill reply");
  return payload[0] != 0;
}

}  // namespace rrq::comm
