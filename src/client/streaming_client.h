#ifndef RRQ_CLIENT_STREAMING_CLIENT_H_
#define RRQ_CLIENT_STREAMING_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/clerk.h"
#include "queue/envelope.h"
#include "queue/queue_api.h"
#include "util/result.h"

namespace rrq::client {

/// §11's future-work extension, built: "One could extend the Client
/// Model to support streaming of requests and replies, as in the
/// Mercury system."
///
/// A StreamingClient keeps a window of K requests outstanding at once.
/// Each window slot is an independent fault-tolerant session — its own
/// registrant ("<client>/s<slot>"), its own private reply queue, its
/// own rid sequence — so the §3 one-request-at-a-time discipline holds
/// *per slot* and every guarantee (exactly-once processing,
/// at-least-once replies, matching) carries over unchanged, while the
/// client as a whole pipelines K requests deep. This is the same
/// construction as §5's "concurrency within a client" (client-id plus
/// thread-id), driven from one thread.
///
/// Single-threaded.
class StreamingClient {
 public:
  /// Called once per finished request (at least once per rid).
  using StreamProcessor = std::function<Status(
      const std::string& rid, const std::string& reply, bool success)>;

  struct Options {
    std::string client_id;
    std::string request_queue;
    /// Slot s uses reply queue "<reply_queue_prefix><s>"; the queues
    /// must exist (RequestSystem::MakeStreamingClient creates them).
    std::string reply_queue_prefix;
    queue::QueueApi* api = nullptr;
    int window = 4;
    /// Per-Receive poll bound while collecting replies.
    uint64_t receive_timeout_micros = 20'000;
    int max_recovery_attempts = 32;
  };

  StreamingClient(Options options, StreamProcessor processor);

  StreamingClient(const StreamingClient&) = delete;
  StreamingClient& operator=(const StreamingClient&) = delete;

  /// Connects every slot and resynchronizes: slots whose previous
  /// incarnation died with a request in flight collect and process
  /// that reply before new work is accepted.
  Status Start();

  /// Submits one request, blocking (by polling for replies) only when
  /// the window is full. Returns the rid assigned to the request.
  Result<std::string> Submit(const Slice& body);

  /// Collects any replies that have arrived; returns how many finished.
  Result<int> Poll();

  /// Blocks until every outstanding request has finished.
  Status Drain();

  Status Stop();

  uint64_t completed() const { return completed_; }
  int in_flight() const { return in_flight_; }
  int window() const { return static_cast<int>(slots_.size()); }

 private:
  struct Slot {
    std::unique_ptr<Clerk> clerk;
    bool awaiting = false;
    std::string rid;
  };

  std::string SlotRegistrant(int slot) const;
  std::string SlotReplyQueue(int slot) const;
  // (Re)connects slot `s`; processes a pending recovered reply if the
  // registration shows one.
  Status ConnectSlot(int s);
  // One receive attempt on an awaiting slot; true when it finished.
  Result<bool> TryCollect(int s);

  Options options_;
  StreamProcessor processor_;
  std::vector<Slot> slots_;
  uint64_t next_seq_ = 1;
  uint64_t completed_ = 0;
  int in_flight_ = 0;
  bool started_ = false;
};

}  // namespace rrq::client

#endif  // RRQ_CLIENT_STREAMING_CLIENT_H_
