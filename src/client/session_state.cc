#include "client/session_state.h"

#include <string>

namespace rrq::client {

std::string_view SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kDisconnected: return "Disconnected";
    case SessionState::kConnected: return "Connected";
    case SessionState::kReqSent: return "Req-Sent";
    case SessionState::kIntermediateIo: return "Intermediate-I/O";
    case SessionState::kReplyRecvd: return "Reply-Recvd";
  }
  return "?";
}

std::string_view SessionEventName(SessionEvent event) {
  switch (event) {
    case SessionEvent::kConnect: return "Connect";
    case SessionEvent::kDisconnect: return "Disconnect";
    case SessionEvent::kSend: return "Send";
    case SessionEvent::kReceiveIntermediate: return "ReceiveIntermediate";
    case SessionEvent::kSendIntermediate: return "SendIntermediate";
    case SessionEvent::kReceiveReply: return "Receive";
  }
  return "?";
}

Status SessionStateMachine::Check(SessionEvent event) const {
  auto reject = [this, event]() {
    return Status::FailedPrecondition(
        std::string(SessionEventName(event)) + " not allowed in state " +
        std::string(SessionStateName(state_)));
  };
  switch (event) {
    case SessionEvent::kConnect:
      if (state_ != SessionState::kDisconnected) return reject();
      return Status::OK();
    case SessionEvent::kDisconnect:
      if (state_ == SessionState::kDisconnected) return reject();
      return Status::OK();
    case SessionEvent::kSend:
      // A Send implicitly acknowledges the previous reply (§3); legal
      // from Connected (first request) or ReplyRecvd.
      if (state_ != SessionState::kConnected &&
          state_ != SessionState::kReplyRecvd) {
        return reject();
      }
      return Status::OK();
    case SessionEvent::kReceiveIntermediate:
      if (state_ != SessionState::kReqSent) return reject();
      return Status::OK();
    case SessionEvent::kSendIntermediate:
      if (state_ != SessionState::kIntermediateIo) return reject();
      return Status::OK();
    case SessionEvent::kReceiveReply:
      if (state_ != SessionState::kReqSent) return reject();
      return Status::OK();
  }
  return reject();
}

Status SessionStateMachine::Apply(SessionEvent event) {
  RRQ_RETURN_IF_ERROR(Check(event));
  switch (event) {
    case SessionEvent::kConnect:
      state_ = SessionState::kConnected;
      break;
    case SessionEvent::kDisconnect:
      state_ = SessionState::kDisconnected;
      break;
    case SessionEvent::kSend:
      state_ = SessionState::kReqSent;
      break;
    case SessionEvent::kReceiveIntermediate:
      state_ = SessionState::kIntermediateIo;
      break;
    case SessionEvent::kSendIntermediate:
      state_ = SessionState::kReqSent;
      break;
    case SessionEvent::kReceiveReply:
      state_ = SessionState::kReplyRecvd;
      break;
  }
  return Status::OK();
}

Status SessionStateMachine::ResumeAt(SessionState state) {
  if (state_ != SessionState::kDisconnected &&
      state_ != SessionState::kConnected) {
    return Status::FailedPrecondition(
        "ResumeAt is only valid at connect time");
  }
  if (state == SessionState::kDisconnected ||
      state == SessionState::kIntermediateIo) {
    return Status::InvalidArgument("invalid resume target");
  }
  state_ = state;
  return Status::OK();
}

}  // namespace rrq::client
