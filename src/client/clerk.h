#ifndef RRQ_CLIENT_CLERK_H_
#define RRQ_CLIENT_CLERK_H_

#include <functional>
#include <string>

#include "client/session_state.h"
#include "queue/queue_api.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::client {

/// How Send moves the request to the queue manager (§5).
enum class SendMode : int {
  /// Enqueue as an RPC: when Send returns OK the request is stably
  /// stored (the paper's default).
  kRpc = 0,
  /// Enqueue as a one-way message: no acknowledgement, one network
  /// message saved; a lost request surfaces as a Receive timeout.
  kOneWay = 1,
};

struct ClerkOptions {
  /// Uniquely names this client; used as the registrant with both
  /// queues. For concurrency within a client (§5), use one clerk per
  /// thread with ids like "client-7/thread-2".
  std::string client_id;
  std::string request_queue;
  std::string reply_queue;
  /// How the queue manager is reached. Not owned; must outlive the
  /// clerk.
  queue::QueueApi* api = nullptr;
  SendMode send_mode = SendMode::kRpc;
  /// Bound on each Receive's wait for a reply to arrive.
  uint64_t receive_timeout_micros = 2'000'000;
  uint32_t request_priority = 0;
};

/// What Connect returns (§3): the rids the system remembers for this
/// client, from which the client resynchronizes.
struct ConnectResult {
  /// rid of the last request this client successfully Sent ("" = none).
  std::string s_rid;
  /// rid of the request whose reply the client last Received ("" = none).
  std::string r_rid;
  /// The ckpt value the client passed to its last Receive.
  std::string ckpt;
  /// eid of the last sent request (for Cancel after recovery).
  queue::ElementId last_request_eid = queue::kInvalidElementId;
  /// eid of the last received reply (for Rereceive after recovery).
  queue::ElementId last_reply_eid = queue::kInvalidElementId;
  /// The protocol state these rids imply (Fig 1's Connect branches).
  SessionState resumed_state = SessionState::kConnected;
};

/// The clerk — the client-side runtime library of the System Model
/// (§5, Fig 5). Translates the five client operations (plus Transceive
/// and Cancel) into queue operations, tagging each Send with its rid
/// and each Receive with [previous rid, ckpt] so that persistent
/// registration can resynchronize the client after any failure.
///
/// The clerk itself runs NO transactions: it is the fault-tolerant
/// sequential program of §2, and the queue manager is its gateway into
/// the transactional world.
///
/// Failure contract: a failed queue op is classified as *definite*
/// (the op certainly did not execute — NotFound, InvalidArgument, a
/// server-side Dequeue timeout, ...) or *uncertain* (it may have
/// committed server-side — connectivity loss, a transport deadline
/// expiry, a reply that arrived but failed to decode). Definite
/// failures leave the session exactly where it was; uncertain ones
/// drop the session to Disconnected so the caller resolves the rid's
/// fate through re-Connect (§2's never-resend rule) — never by a blind
/// retry that a stale Req-Sent state would confusingly reject.
///
/// Single-threaded (one clerk per client thread). The *Async variants
/// keep that model — one logical thread of control per clerk — but let
/// it span completion callbacks, so many clerks can pipeline their ops
/// on one shared multiplexed channel.
class Clerk {
 public:
  explicit Clerk(ClerkOptions options);

  Clerk(const Clerk&) = delete;
  Clerk& operator=(const Clerk&) = delete;

  /// Registers with the request and reply queues and returns the
  /// stable rids/ckpt of this client's previous incarnation, leaving
  /// the session in the state they imply.
  Result<ConnectResult> Connect();

  /// Deregisters from both queues (forgetting the stable state).
  Status Disconnect();

  /// Sends request `r` with request-id `rid`. In kRpc mode, an OK
  /// return means the request and rid are stably stored. The rid must
  /// be unique per request (it is the client's idempotency token).
  Status Send(const Slice& request, const std::string& rid);

  /// Returns the next reply, tagging the dequeue with the rid of the
  /// previous Send and the caller's checkpoint. The ckpt is stored
  /// stably with the dequeue and handed back by a later Connect —
  /// this is how a small client state is checkpointed for free (§2).
  Result<std::string> Receive(const Slice& ckpt);

  /// Returns the reply most recently returned by Receive (reads the
  /// retained copy; works even after the element left the queue).
  Result<std::string> Rereceive();

  /// Send + Receive fused (§5): blocks until the reply arrives.
  Result<std::string> Transceive(const Slice& request, const std::string& rid,
                                 const Slice& ckpt);

  // ---- Pipelined variants -------------------------------------------
  // Same protocol, same state machine, but the queue op is issued
  // through QueueApi's *Async hooks so many clerks can keep ops in
  // flight on one shared channel. At most one async op (or one
  // transceive) may be outstanding per clerk; the completion callback
  // may run on the transport's demux thread and must not block.

  /// Asynchronous Send: `done` fires with the same status contract as
  /// Send (including the uncertain-failure session reset).
  void SendAsync(const Slice& request, const std::string& rid,
                 std::function<void(Status)> done);

  /// Asynchronous Receive; same contract as Receive.
  void ReceiveAsync(const Slice& ckpt,
                    std::function<void(Result<std::string>)> done);

  /// Pipelined Transceive. With `overlap_receive` the dequeue for the
  /// reply is put on the wire *together with* the enqueue (a per-clerk
  /// window of two ops corked into one send) instead of after its
  /// acknowledgement — one round trip per request instead of two. The
  /// reply dequeue then rides the long-poll bound, so the clerk's
  /// receive_timeout_micros must be nonzero (falls back to the
  /// serialized chain otherwise). Overlapped failures trade precise
  /// classification for latency: any failure resets the session and is
  /// resolved through re-Connect.
  void TransceiveAsync(const Slice& request, const std::string& rid,
                       const Slice& ckpt, bool overlap_receive,
                       std::function<void(Result<std::string>)> done);

  /// Cancels the last sent request (§7): succeeds iff the request has
  /// not yet been consumed by a committed dequeue.
  Result<bool> CancelLastRequest();

  SessionState state() const { return machine_.state(); }
  const std::string& last_sent_rid() const { return rid_tag_; }
  queue::ElementId last_request_eid() const { return last_request_eid_; }

 private:
  // Commits (or classifies the failure of) the enqueue backing a Send
  // for `rid`; shared by the sync and async paths.
  Status FinishSend(const std::string& rid, const Result<queue::ElementId>& r);
  // Likewise for the dequeue backing a Receive.
  Result<std::string> FinishReceive(Result<queue::Element> r);
  // Uncertain failure (§2): forget the session; re-Connect resolves.
  void ResetSession();

  ClerkOptions options_;
  SessionStateMachine machine_;
  bool connected_ = false;
  std::string rid_tag_;  // rid of the last Send (Fig 5's global).
  queue::ElementId last_request_eid_ = queue::kInvalidElementId;
  queue::ElementId last_reply_eid_ = queue::kInvalidElementId;
};

/// Encodes / decodes the reply-queue tag, which carries the pair
/// [rid, ckpt] (Fig 5's "reply-tag[rid-piece], reply-tag[ckpt-piece]").
std::string EncodeReplyTag(const Slice& rid, const Slice& ckpt);
Status DecodeReplyTag(const Slice& tag, std::string* rid, std::string* ckpt);

}  // namespace rrq::client

#endif  // RRQ_CLIENT_CLERK_H_
