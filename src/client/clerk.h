#ifndef RRQ_CLIENT_CLERK_H_
#define RRQ_CLIENT_CLERK_H_

#include <string>

#include "client/session_state.h"
#include "queue/queue_api.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::client {

/// How Send moves the request to the queue manager (§5).
enum class SendMode : int {
  /// Enqueue as an RPC: when Send returns OK the request is stably
  /// stored (the paper's default).
  kRpc = 0,
  /// Enqueue as a one-way message: no acknowledgement, one network
  /// message saved; a lost request surfaces as a Receive timeout.
  kOneWay = 1,
};

struct ClerkOptions {
  /// Uniquely names this client; used as the registrant with both
  /// queues. For concurrency within a client (§5), use one clerk per
  /// thread with ids like "client-7/thread-2".
  std::string client_id;
  std::string request_queue;
  std::string reply_queue;
  /// How the queue manager is reached. Not owned; must outlive the
  /// clerk.
  queue::QueueApi* api = nullptr;
  SendMode send_mode = SendMode::kRpc;
  /// Bound on each Receive's wait for a reply to arrive.
  uint64_t receive_timeout_micros = 2'000'000;
  uint32_t request_priority = 0;
};

/// What Connect returns (§3): the rids the system remembers for this
/// client, from which the client resynchronizes.
struct ConnectResult {
  /// rid of the last request this client successfully Sent ("" = none).
  std::string s_rid;
  /// rid of the request whose reply the client last Received ("" = none).
  std::string r_rid;
  /// The ckpt value the client passed to its last Receive.
  std::string ckpt;
  /// eid of the last sent request (for Cancel after recovery).
  queue::ElementId last_request_eid = queue::kInvalidElementId;
  /// eid of the last received reply (for Rereceive after recovery).
  queue::ElementId last_reply_eid = queue::kInvalidElementId;
  /// The protocol state these rids imply (Fig 1's Connect branches).
  SessionState resumed_state = SessionState::kConnected;
};

/// The clerk — the client-side runtime library of the System Model
/// (§5, Fig 5). Translates the five client operations (plus Transceive
/// and Cancel) into queue operations, tagging each Send with its rid
/// and each Receive with [previous rid, ckpt] so that persistent
/// registration can resynchronize the client after any failure.
///
/// The clerk itself runs NO transactions: it is the fault-tolerant
/// sequential program of §2, and the queue manager is its gateway into
/// the transactional world.
///
/// Single-threaded (one clerk per client thread).
class Clerk {
 public:
  explicit Clerk(ClerkOptions options);

  Clerk(const Clerk&) = delete;
  Clerk& operator=(const Clerk&) = delete;

  /// Registers with the request and reply queues and returns the
  /// stable rids/ckpt of this client's previous incarnation, leaving
  /// the session in the state they imply.
  Result<ConnectResult> Connect();

  /// Deregisters from both queues (forgetting the stable state).
  Status Disconnect();

  /// Sends request `r` with request-id `rid`. In kRpc mode, an OK
  /// return means the request and rid are stably stored. The rid must
  /// be unique per request (it is the client's idempotency token).
  Status Send(const Slice& request, const std::string& rid);

  /// Returns the next reply, tagging the dequeue with the rid of the
  /// previous Send and the caller's checkpoint. The ckpt is stored
  /// stably with the dequeue and handed back by a later Connect —
  /// this is how a small client state is checkpointed for free (§2).
  Result<std::string> Receive(const Slice& ckpt);

  /// Returns the reply most recently returned by Receive (reads the
  /// retained copy; works even after the element left the queue).
  Result<std::string> Rereceive();

  /// Send + Receive fused (§5): blocks until the reply arrives.
  Result<std::string> Transceive(const Slice& request, const std::string& rid,
                                 const Slice& ckpt);

  /// Cancels the last sent request (§7): succeeds iff the request has
  /// not yet been consumed by a committed dequeue.
  Result<bool> CancelLastRequest();

  SessionState state() const { return machine_.state(); }
  const std::string& last_sent_rid() const { return rid_tag_; }
  queue::ElementId last_request_eid() const { return last_request_eid_; }

 private:
  ClerkOptions options_;
  SessionStateMachine machine_;
  bool connected_ = false;
  std::string rid_tag_;  // rid of the last Send (Fig 5's global).
  queue::ElementId last_request_eid_ = queue::kInvalidElementId;
  queue::ElementId last_reply_eid_ = queue::kInvalidElementId;
};

/// Encodes / decodes the reply-queue tag, which carries the pair
/// [rid, ckpt] (Fig 5's "reply-tag[rid-piece], reply-tag[ckpt-piece]").
std::string EncodeReplyTag(const Slice& rid, const Slice& ckpt);
Status DecodeReplyTag(const Slice& tag, std::string* rid, std::string* ckpt);

}  // namespace rrq::client

#endif  // RRQ_CLIENT_CLERK_H_
