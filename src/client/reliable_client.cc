#include "client/reliable_client.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace rrq::client {

namespace {

// Statuses after which the clerk dropped its session for §2
// uncertainty — the op may have committed server-side (connectivity
// loss, a transport deadline expiry, or a reply that arrived but
// failed to decode). Recover by reconnecting and comparing rids.
// (TimedOut only reaches here from a Send — a Receive's TimedOut is
// consumed by the poll branch first — and a timed-out Send is as
// in-doubt as a lost acknowledgement.)
bool NeedsReconnect(const Status& s) {
  return s.IsUnavailable() || s.IsNotConnected() || s.IsCorruption() ||
         s.IsTimedOut();
}

}  // namespace

ReliableClient::ReliableClient(ReliableClientOptions options,
                               ReplyProcessor processor)
    : options_(std::move(options)), processor_(std::move(processor)) {}

std::string ReliableClient::MakeRid() {
  return options_.clerk.client_id + "#" + std::to_string(next_seq_++);
}

uint64_t ReliableClient::ParseSeq(const std::string& rid) {
  const size_t pos = rid.rfind('#');
  if (pos == std::string::npos) return 0;
  errno = 0;
  char* end = nullptr;
  const unsigned long long seq = strtoull(rid.c_str() + pos + 1, &end, 10);
  if (end == rid.c_str() + pos + 1 || errno != 0) return 0;
  return seq;
}

std::string ReliableClient::DeviceState() const {
  return options_.device == nullptr ? std::string() :
                                      options_.device->ReadState();
}

Status ReliableClient::ProcessReply(const std::string& reply,
                                    bool maybe_duplicate) {
  if (maybe_duplicate) ++redeliveries_;
  // The processor first (display etc., at-least-once), the
  // non-idempotent device last: a crash in between makes the resync
  // logic reprocess, re-running the processor but emitting exactly
  // once overall.
  if (processor_ != nullptr) {
    RRQ_RETURN_IF_ERROR(processor_(reply, maybe_duplicate));
  }
  if (options_.device != nullptr) {
    RRQ_RETURN_IF_ERROR(options_.device->Emit(reply));
  }
  return Status::OK();
}

Status ReliableClient::Reconnect(ConnectResult* result) {
  Status last = Status::Unavailable("no reconnect attempts made");
  for (int attempt = 0; attempt < options_.max_recovery_attempts; ++attempt) {
    clerk_ = std::make_unique<Clerk>(options_.clerk);
    auto r = clerk_->Connect();
    if (r.ok()) {
      *result = *r;
      const uint64_t recovered = ParseSeq(r->s_rid);
      if (recovered >= next_seq_) next_seq_ = recovered + 1;
      ++reconnects_;
      return Status::OK();
    }
    last = r.status();
    if (!last.IsUnavailable() && !last.IsTimedOut()) return last;
    // Transient: back off briefly and retry (real time; partitions in
    // tests heal asynchronously).
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt));
  }
  return last;
}

Result<queue::ReplyEnvelope> ReliableClient::DecodeAndCheck(
    const std::string& raw, const std::string& rid) {
  queue::ReplyEnvelope envelope;
  RRQ_RETURN_IF_ERROR(queue::DecodeReplyEnvelope(raw, &envelope));
  if (envelope.rid != rid) {
    // The protocol guarantees Request-Reply Matching; a mismatch means
    // the reply queue is shared or corrupted.
    return Status::Internal("reply rid mismatch: expected " + rid + ", got " +
                            envelope.rid);
  }
  return envelope;
}

Status ReliableClient::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  ConnectResult cr;
  RRQ_RETURN_IF_ERROR(Reconnect(&cr));

  // Fig 2 lines 2–11: connect-time resynchronization. In both branches
  // the receive loop does the work: with an outstanding request it
  // receives the pending reply; with a received-but-maybe-unprocessed
  // reply (state Reply-Recvd) it rereads the retained copy and
  // reprocesses unless the testable device proves it was processed.
  if (!cr.s_rid.empty()) {
    auto reply = AwaitReply(cr.s_rid, cr.ckpt);
    if (!reply.ok() && !reply.status().IsAborted()) return reply.status();
  }
  started_ = true;
  return Status::OK();
}

Result<std::string> ReliableClient::AwaitReply(const std::string& rid,
                                               const std::string& ckpt_hint) {
  // Tracks the ckpt value the most recent reconnect reported, for the
  // testable-device "was it already processed?" comparison.
  std::string resume_ckpt = ckpt_hint;
  // True only when a Connect proved the dequeue for *this* rid already
  // committed (r_rid == rid). A raw Reply-Recvd clerk state is not
  // enough: after a mid-await reconnect it can refer to the previous
  // request.
  bool resumed_with_reply = clerk_->state() == SessionState::kReplyRecvd;

  // Reconnects and asks the system what it saw for this rid. Returns
  // NotFound when the request is not in the system at all (possible
  // only for lost one-way sends) so Execute can resend it.
  auto reconnect_and_classify = [this, &rid, &resume_ckpt,
                                 &resumed_with_reply]() -> Status {
    ConnectResult cr;
    RRQ_RETURN_IF_ERROR(Reconnect(&cr));
    if (cr.s_rid != rid) {
      return Status::NotFound("request not in the system: " + rid);
    }
    resume_ckpt = cr.ckpt;
    resumed_with_reply = cr.r_rid == rid;
    return Status::OK();
  };

  // Timeouts (server still working) and recoveries (connectivity lost)
  // spend separate budgets.
  int polls = 0;
  int recoveries = 0;
  while (polls < options_.max_poll_attempts &&
         recoveries < options_.max_recovery_attempts) {
    if (resumed_with_reply) {
      // The dequeue committed (a reconnect told us so) but we never
      // saw the contents — read the retained copy (this is what
      // Rereceive exists for, §3).
      auto replay = clerk_->Rereceive();
      if (!replay.ok()) {
        const Status& s = replay.status();
        if (s.IsUnavailable() || s.IsNotConnected()) {  // NOT Corruption: a
          // corrupt retained element stays corrupt across reconnects.
          ++recoveries;
          RRQ_RETURN_IF_ERROR(reconnect_and_classify());
          continue;
        }
        return s;
      }
      RRQ_ASSIGN_OR_RETURN(queue::ReplyEnvelope envelope,
                           DecodeAndCheck(*replay, rid));
      bool already_processed =
          options_.device != nullptr && DeviceState() != resume_ckpt;
      if (!already_processed) {
        RRQ_RETURN_IF_ERROR(ProcessReply(
            envelope.body, /*maybe_duplicate=*/options_.device == nullptr));
      }
      ++completed_;
      if (!envelope.success) {
        return Status::Aborted("request failed permanently: " + envelope.body);
      }
      return envelope.body;
    }

    const std::string ckpt = DeviceState();
    auto r = clerk_->Receive(ckpt);
    if (r.ok()) {
      RRQ_ASSIGN_OR_RETURN(queue::ReplyEnvelope envelope,
                           DecodeAndCheck(*r, rid));
      RRQ_RETURN_IF_ERROR(
          ProcessReply(envelope.body, /*maybe_duplicate=*/false));
      ++completed_;
      if (!envelope.success) {
        return Status::Aborted("request failed permanently: " + envelope.body);
      }
      return envelope.body;
    }
    const Status& s = r.status();
    if (s.IsTimedOut() || s.IsBusy() || s.IsNotFound()) {
      ++polls;
      // One-way sends are unacknowledged: after a stretch of fruitless
      // polls, reconnect and ask whether the request ever arrived (§5:
      // "can determine what happened when it reconnects"). A missing
      // s_rid means the one-way message was lost — the NotFound makes
      // Execute resend.
      if (options_.clerk.send_mode == SendMode::kOneWay && polls % 8 == 0) {
        ++recoveries;
        RRQ_RETURN_IF_ERROR(reconnect_and_classify());
      }
      continue;  // Reply not there yet; poll again.
    }
    if (!NeedsReconnect(s)) return s;

    // Uncertainty: the dequeue may or may not have committed.
    ++recoveries;
    RRQ_RETURN_IF_ERROR(reconnect_and_classify());
    // If not resumed-with-reply we are back in Req-Sent: Receive again.
  }
  return Status::Unavailable("no reply for " + rid);
}

Result<std::string> ReliableClient::Execute(const Slice& request) {
  if (!started_) return Status::FailedPrecondition("client not started");
  const std::string rid = MakeRid();

  queue::RequestEnvelope envelope;
  envelope.rid = rid;
  envelope.reply_queue = options_.clerk.reply_queue;
  envelope.body = request.ToString();
  const std::string wire = queue::EncodeRequestEnvelope(envelope);
  const Slice wrapped(wire);

  for (int round = 0; round < options_.max_recovery_attempts; ++round) {
    // ---- Send with in-doubt resolution (§2). ---------------------------
    bool sent = false;
    for (int attempt = 0; !sent && attempt < options_.max_recovery_attempts;
         ++attempt) {
      Status s = clerk_->Send(wrapped, rid);
      if (s.ok()) {
        sent = true;
        break;
      }
      if (s.IsFailedPrecondition() &&
          clerk_->state() == SessionState::kReqSent &&
          clerk_->last_sent_rid() == rid) {
        sent = true;  // A resend round found the request already sent.
        break;
      }
      if (!NeedsReconnect(s)) return s;
      // The send is in doubt. Reconnect and ask the system what it saw.
      ConnectResult cr;
      RRQ_RETURN_IF_ERROR(Reconnect(&cr));
      if (cr.s_rid == rid) {
        sent = true;  // The enqueue committed; only the ack was lost.
      }
      // Otherwise the request never arrived: loop and resend. Because
      // the rid is compared, a resend can never double-submit.
    }
    if (!sent) return Status::Unavailable("could not submit request: " + rid);

    auto reply = AwaitReply(rid);
    if (reply.ok() || !reply.status().IsNotFound()) return reply;
    // NotFound: a one-way send was lost in transit — resend this rid.
  }
  return Status::Unavailable("could not complete request: " + rid);
}

Result<ConnectResult> ReliableClient::Resynchronize() {
  ConnectResult cr;
  RRQ_RETURN_IF_ERROR(Reconnect(&cr));
  return cr;
}

Result<bool> ReliableClient::CancelInFlight() {
  if (clerk_ == nullptr) return Status::FailedPrecondition("not connected");
  return clerk_->CancelLastRequest();
}

Status ReliableClient::Stop() {
  if (!started_) return Status::OK();
  started_ = false;
  if (clerk_ != nullptr && clerk_->state() != SessionState::kDisconnected) {
    return clerk_->Disconnect();
  }
  return Status::OK();
}

}  // namespace rrq::client
