#ifndef RRQ_CLIENT_CLERK_POOL_H_
#define RRQ_CLIENT_CLERK_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/clerk.h"
#include "client/reliable_client.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::client {

struct ClerkPoolOptions {
  /// Where the daemon lives. The pool owns exactly one TcpChannel built
  /// from this; on a v2 daemon every clerk's ops multiplex on it.
  net::TcpChannelOptions channel;
  /// Number of clerks sharing the channel.
  int clerks = 8;
  /// Clerk i registers as "<client_prefix>-<i>" with both queues.
  std::string client_prefix = "pool";
  /// The shared request queue every clerk Sends into.
  std::string request_queue = "requests";
  /// Clerk i's private reply queue is "<reply_queue_prefix><client id>"
  /// — private per registrant, as the §3 protocol requires (the reply
  /// demultiplexing across clerks is by queue + registrant; the wire
  /// demultiplexing across in-flight calls is by correlation id).
  std::string reply_queue_prefix = "reply.";
  /// Diagnostic/bench mode: clerk i's request queue is its own reply
  /// queue, so one Transceive is a self-contained enqueue→dequeue pair
  /// with no server program in the loop (isolates pool + wire cost).
  bool self_loop = false;
  /// Provision (CreateQueue) the request and reply queues at Start().
  bool provision_queues = true;
  SendMode send_mode = SendMode::kRpc;
  /// Per-Receive reply wait. Also the long-poll bound a blocking
  /// dequeue sends server-side; the transport stretches each such
  /// call's deadline past it (net::kBlockingCallMarginMicros).
  uint64_t receive_timeout_micros = 2'000'000;
  uint32_t request_priority = 0;
  /// Recovery budgets handed to each slot's ReliableClient.
  int max_recovery_attempts = 32;
  int max_poll_attempts = 200;
};

/// N clerks behind ONE pipelined connection — the paper's §5 shape
/// (many client threads, few queue-manager connections) made real:
/// each clerk keeps its private reply queue and rid/ckpt protocol
/// unchanged, while their queue ops share the channel's combining
/// writer and are fanned back out by the demux reader. Three layers of
/// demultiplexing cooperate:
///
///   correlation id → pending call   (TcpChannel, wire v2)
///   reply queue + registrant → clerk (the queue manager itself)
///   rid tag → request               (the clerk protocol, Fig 5)
///
/// Use either face per slot, not both concurrently:
///  - Execute(i, request): the reliable, envelope-wrapped Fig 2 loop
///    (rides out daemon kills; resolves §2 uncertainty exactly-once).
///    Thread-safe across distinct slots — one thread per slot.
///  - TransceiveAsync(i, ...): the raw pipelined clerk op for
///    closed-loop chains (bench, latency-sensitive callers); failures
///    surface to the caller, who resynchronizes via Resynchronize(i).
class ClerkPool {
 public:
  struct SlotStats {
    uint64_t transceives = 0;        ///< TransceiveAsync completions.
    uint64_t failures = 0;           ///< ... that failed.
    uint64_t deadline_expiries = 0;  ///< ... failed by a per-call deadline.
    uint64_t resyncs = 0;            ///< Successful re-Connects after loss.
  };

  explicit ClerkPool(ClerkPoolOptions options);
  ~ClerkPool();

  ClerkPool(const ClerkPool&) = delete;
  ClerkPool& operator=(const ClerkPool&) = delete;

  /// Provisions the queues (when asked to) and connects every clerk —
  /// N Connect resynchronizations pipelined over the one channel.
  Status Start();
  /// Disconnects every clerk (best effort — the daemon may be gone).
  Status Stop();

  size_t size() const { return slots_.size(); }
  const std::string& client_id(size_t i) const;
  const std::string& reply_queue(size_t i) const;
  const std::string& request_queue(size_t i) const;

  /// Reliable execution on slot i (Fig 2): exactly-once processing
  /// across daemon kills. One logical caller per slot.
  Result<std::string> Execute(size_t i, const Slice& request);

  /// Load-balanced reliable execution: claims any currently-free slot
  /// (lowest index first), runs Execute on it, and releases it.
  /// Blocks while every slot is busy, so any number of caller threads
  /// can share the pool — the pool itself becomes the paper's
  /// many-callers-few-sessions funnel. Safe to mix with per-slot
  /// Execute only for slots those callers own exclusively.
  Result<std::string> Execute(const Slice& request);

  /// Repoints the pool's channel at another daemon (a promoted
  /// backup). Clerk sessions are durable state the backup replicated,
  /// so nothing per-slot happens eagerly: in-flight Executes recover
  /// through their own reconnect loops against the new target, and
  /// idle slots reconnect on next use. Safe to call while every slot
  /// is mid-Execute — that is the failover scenario it exists for.
  Status Repoint(const std::string& host, uint16_t port);

  /// Raw pipelined Transceive on slot i's clerk (no recovery). See
  /// Clerk::TransceiveAsync for `overlap_receive`.
  void TransceiveAsync(size_t i, const Slice& request, const std::string& rid,
                       const Slice& ckpt, bool overlap_receive,
                       std::function<void(Result<std::string>)> done);

  /// Re-runs slot i's Connect resynchronization (bounded attempts) and
  /// returns the rids the system remembers — the §2 evidence from
  /// which a raw (TransceiveAsync) caller resolves in-doubt ops.
  Result<ConnectResult> Resynchronize(size_t i);

  /// Resynchronizes every slot whose session dropped (a channel
  /// failure drops all of them at once). First error wins, but every
  /// slot is attempted.
  Status ResynchronizeAll();

  /// Slot i's ReliableClient (stats, CancelInFlight, ...).
  ReliableClient* reliable(size_t i) { return slots_[i]->reliable.get(); }
  /// Slot i's clerk; null before Start(). The pointer is stable until
  /// the next Resynchronize/Execute-recovery on that slot.
  Clerk* clerk(size_t i) { return slots_[i]->reliable->clerk(); }

  net::TcpChannel* channel() { return &channel_; }
  net::ChannelQueueApi* api() { return &api_; }

  SlotStats slot_stats(size_t i) const;
  /// Sum of per-slot resyncs (reconnects beyond each slot's first).
  uint64_t resyncs() const;

 private:
  struct Slot {
    std::string client_id;
    std::string request_queue;
    std::string reply_queue;
    std::unique_ptr<ReliableClient> reliable;
    std::atomic<uint64_t> transceives{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> deadline_expiries{0};
  };

  // Claims the lowest free slot for pool-level Execute (blocks while
  // all are busy); ReleaseSlot returns it and wakes one waiter.
  size_t ClaimSlot();
  void ReleaseSlot(size_t i);

  ClerkPoolOptions options_;
  net::TcpChannel channel_;
  net::ChannelQueueApi api_;
  std::vector<std::unique_ptr<Slot>> slots_;
  bool started_ = false;

  Mutex slots_mu_;
  CondVar slot_free_cv_;
  std::vector<bool> busy_ GUARDED_BY(slots_mu_);
};

}  // namespace rrq::client

#endif  // RRQ_CLIENT_CLERK_POOL_H_
