#include "client/clerk_pool.h"

#include <utility>

namespace rrq::client {

ClerkPool::ClerkPool(ClerkPoolOptions options)
    : options_(std::move(options)),
      channel_(options_.channel),
      api_(&channel_) {
  const int n = options_.clerks < 1 ? 1 : options_.clerks;
  slots_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->client_id = options_.client_prefix + "-" + std::to_string(i);
    slot->reply_queue = options_.reply_queue_prefix + slot->client_id;
    slot->request_queue =
        options_.self_loop ? slot->reply_queue : options_.request_queue;

    ReliableClientOptions rc;
    rc.clerk.client_id = slot->client_id;
    rc.clerk.request_queue = slot->request_queue;
    rc.clerk.reply_queue = slot->reply_queue;
    rc.clerk.api = &api_;  // The shared channel: this is the pool.
    rc.clerk.send_mode = options_.send_mode;
    rc.clerk.receive_timeout_micros = options_.receive_timeout_micros;
    rc.clerk.request_priority = options_.request_priority;
    rc.max_recovery_attempts = options_.max_recovery_attempts;
    rc.max_poll_attempts = options_.max_poll_attempts;
    slot->reliable =
        std::make_unique<ReliableClient>(std::move(rc), ReplyProcessor());
    slots_.push_back(std::move(slot));
  }
  busy_.assign(slots_.size(), false);
}

ClerkPool::~ClerkPool() {
  if (started_) Stop();
}

const std::string& ClerkPool::client_id(size_t i) const {
  return slots_[i]->client_id;
}
const std::string& ClerkPool::reply_queue(size_t i) const {
  return slots_[i]->reply_queue;
}
const std::string& ClerkPool::request_queue(size_t i) const {
  return slots_[i]->request_queue;
}

Status ClerkPool::Start() {
  if (started_) return Status::FailedPrecondition("pool already started");
  if (options_.provision_queues) {
    if (!options_.self_loop) {
      Status s = api_.CreateQueue(options_.request_queue);
      if (!s.ok() && !s.IsAlreadyExists()) return s;
    }
    for (const auto& slot : slots_) {
      Status s = api_.CreateQueue(slot->reply_queue);
      if (!s.ok() && !s.IsAlreadyExists()) return s;
    }
  }
  for (const auto& slot : slots_) {
    RRQ_RETURN_IF_ERROR(slot->reliable->Start());
  }
  started_ = true;
  return Status::OK();
}

Status ClerkPool::Stop() {
  if (!started_) return Status::OK();
  started_ = false;
  Status first;
  for (const auto& slot : slots_) {
    Status s = slot->reliable->Stop();
    // The daemon being gone is a normal way for a pool to stop.
    if (!s.ok() && !s.IsUnavailable() && !s.IsNotConnected() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Result<std::string> ClerkPool::Execute(size_t i, const Slice& request) {
  return slots_[i]->reliable->Execute(request);
}

size_t ClerkPool::ClaimSlot() {
  MutexLock lock(slots_mu_);
  for (;;) {
    for (size_t i = 0; i < busy_.size(); ++i) {
      if (!busy_[i]) {
        busy_[i] = true;
        return i;
      }
    }
    slot_free_cv_.Wait(slots_mu_);
  }
}

void ClerkPool::ReleaseSlot(size_t i) {
  {
    MutexLock lock(slots_mu_);
    busy_[i] = false;
  }
  slot_free_cv_.Signal();
}

Result<std::string> ClerkPool::Execute(const Slice& request) {
  const size_t i = ClaimSlot();
  Result<std::string> r = slots_[i]->reliable->Execute(request);
  ReleaseSlot(i);
  return r;
}

Status ClerkPool::Repoint(const std::string& host, uint16_t port) {
  // Retargeting is all that happens eagerly, because clerk sessions
  // are *durable* state the backup replicated: registrations and
  // remembered rids are already there. A slot mid-Execute when the
  // primary died recovers through Execute's own reconnect loop (now
  // against the new target — touching its ReliableClient here would
  // race with that); an idle slot's next call reconnects the channel
  // transparently. Callers driving raw TransceiveAsync resolve their
  // in-doubt ops with ResynchronizeAll, as always.
  channel_.SetTarget(host, port);
  return Status::OK();
}

void ClerkPool::TransceiveAsync(
    size_t i, const Slice& request, const std::string& rid, const Slice& ckpt,
    bool overlap_receive, std::function<void(Result<std::string>)> done) {
  Slot* slot = slots_[i].get();
  Clerk* c = slot->reliable->clerk();
  if (c == nullptr) {
    done(Status::NotConnected("slot never connected — call Start()"));
    return;
  }
  c->TransceiveAsync(
      request, rid, ckpt, overlap_receive,
      [slot, done = std::move(done)](Result<std::string> r) {
        slot->transceives.fetch_add(1, std::memory_order_relaxed);
        if (!r.ok()) {
          slot->failures.fetch_add(1, std::memory_order_relaxed);
          if (net::IsCallDeadlineExpiry(r.status())) {
            slot->deadline_expiries.fetch_add(1, std::memory_order_relaxed);
          }
        }
        done(std::move(r));
      });
}

Result<ConnectResult> ClerkPool::Resynchronize(size_t i) {
  return slots_[i]->reliable->Resynchronize();
}

Status ClerkPool::ResynchronizeAll() {
  Status first;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Clerk* c = slots_[i]->reliable->clerk();
    if (c != nullptr && c->state() != SessionState::kDisconnected) continue;
    auto r = Resynchronize(i);
    if (!r.ok() && first.ok()) first = r.status();
  }
  return first;
}

ClerkPool::SlotStats ClerkPool::slot_stats(size_t i) const {
  const Slot& slot = *slots_[i];
  SlotStats stats;
  stats.transceives = slot.transceives.load(std::memory_order_relaxed);
  stats.failures = slot.failures.load(std::memory_order_relaxed);
  stats.deadline_expiries =
      slot.deadline_expiries.load(std::memory_order_relaxed);
  const uint64_t reconnects = slot.reliable->reconnects();
  stats.resyncs = reconnects > 0 ? reconnects - 1 : 0;
  return stats;
}

uint64_t ClerkPool::resyncs() const {
  uint64_t total = 0;
  for (size_t i = 0; i < slots_.size(); ++i) total += slot_stats(i).resyncs;
  return total;
}

}  // namespace rrq::client
