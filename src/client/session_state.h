#ifndef RRQ_CLIENT_SESSION_STATE_H_
#define RRQ_CLIENT_SESSION_STATE_H_

#include <string_view>

#include "util/status.h"

namespace rrq::client {

/// The client's protocol states, covering both the non-interactive
/// diagram (Fig 1: Disconnected, Connected, ReqSent, ReplyRecvd) and
/// the interactive extension (Fig 7 adds IntermediateIo).
enum class SessionState : int {
  kDisconnected = 0,
  kConnected = 1,
  kReqSent = 2,
  kIntermediateIo = 3,  // Interactive requests only (Fig 7).
  kReplyRecvd = 4,
};

/// The operations that drive state transitions.
enum class SessionEvent : int {
  kConnect = 0,
  kDisconnect = 1,
  kSend = 2,
  kReceiveIntermediate = 3,  // Received intermediate output (Fig 7).
  kSendIntermediate = 4,     // Sent intermediate input (Fig 7).
  kReceiveReply = 5,
};

std::string_view SessionStateName(SessionState state);
std::string_view SessionEventName(SessionEvent event);

/// Explicit encoding of the Fig 1 / Fig 7 state transition diagrams.
/// The clerk drives one of these to reject out-of-protocol operations
/// (e.g. two Sends without an intervening Receive — the model is
/// strictly one-request-at-a-time, §3).
class SessionStateMachine {
 public:
  SessionStateMachine() = default;

  SessionState state() const { return state_; }

  /// Applies `event`; FailedPrecondition when the transition is not in
  /// the diagram. Connect may land in Connected, ReqSent, or
  /// ReplyRecvd depending on the rids returned by the system — the
  /// caller passes the resolved target via ResumeAt instead.
  Status Apply(SessionEvent event);

  /// Validates `event` without applying it — the same verdict Apply
  /// would give. Lets the clerk check an operation's legality *before*
  /// issuing its queue op and commit the transition only on evidence
  /// of success, so a definite failure (NotFound, InvalidArgument, ...)
  /// leaves the session exactly where it was.
  Status Check(SessionEvent event) const;

  /// Connect-time resynchronization: jump to the state the returned
  /// rids imply (Fig 1's branches out of the Connect operation).
  Status ResumeAt(SessionState state);

 private:
  SessionState state_ = SessionState::kDisconnected;
};

}  // namespace rrq::client

#endif  // RRQ_CLIENT_SESSION_STATE_H_
