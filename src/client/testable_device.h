#ifndef RRQ_CLIENT_TESTABLE_DEVICE_H_
#define RRQ_CLIENT_TESTABLE_DEVICE_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::client {

/// A "testable device" (§3, after [Pausch 88]): an output device whose
/// state the client can read, making non-idempotent reply processing
/// (printing a ticket, dispensing cash) exactly-once. The client reads
/// the state before Receive, checkpoints it in the Receive's ckpt
/// parameter, and compares at reconnect: a state mismatch means the
/// reply was already processed.
///
/// Devices deliberately live OUTSIDE the client object — like real
/// hardware, they survive a client crash.
class TestableDevice {
 public:
  virtual ~TestableDevice() = default;

  /// The device's externally readable state (e.g. next ticket number).
  virtual std::string ReadState() const = 0;

  /// Performs the non-idempotent output; advances the state.
  virtual Status Emit(const Slice& output) = 0;
};

/// A ticket printer: each Emit prints one ticket and advances the
/// ticket counter. Thread-safe.
class TicketPrinter final : public TestableDevice {
 public:
  TicketPrinter() = default;

  std::string ReadState() const override {
    MutexLock guard(mu_);
    return std::to_string(next_ticket_);
  }

  Status Emit(const Slice& output) override {
    MutexLock guard(mu_);
    printed_.push_back(output.ToString());
    ++next_ticket_;
    return Status::OK();
  }

  /// Everything ever printed, in order (for verifying exactly-once).
  std::vector<std::string> printed() const {
    MutexLock guard(mu_);
    return printed_;
  }

 private:
  mutable Mutex mu_;
  uint64_t next_ticket_ GUARDED_BY(mu_) = 1;
  std::vector<std::string> printed_ GUARDED_BY(mu_);
};

/// A cash dispenser: Emit parses the output as a decimal amount and
/// dispenses it; state is the total dispensed so far. Thread-safe.
class CashDispenser final : public TestableDevice {
 public:
  CashDispenser() = default;

  std::string ReadState() const override {
    MutexLock guard(mu_);
    return std::to_string(total_dispensed_);
  }

  Status Emit(const Slice& output) override {
    MutexLock guard(mu_);
    errno = 0;
    char* end = nullptr;
    const std::string text = output.ToString();
    const long long amount = strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || amount < 0) {
      return Status::InvalidArgument("not a cash amount: " + text);
    }
    total_dispensed_ += static_cast<uint64_t>(amount);
    ++dispense_count_;
    return Status::OK();
  }

  uint64_t total_dispensed() const {
    MutexLock guard(mu_);
    return total_dispensed_;
  }
  uint64_t dispense_count() const {
    MutexLock guard(mu_);
    return dispense_count_;
  }

 private:
  mutable Mutex mu_;
  uint64_t total_dispensed_ GUARDED_BY(mu_) = 0;
  uint64_t dispense_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace rrq::client

#endif  // RRQ_CLIENT_TESTABLE_DEVICE_H_
