#ifndef RRQ_CLIENT_RELIABLE_CLIENT_H_
#define RRQ_CLIENT_RELIABLE_CLIENT_H_

#include <functional>
#include <memory>
#include <string>

#include "client/clerk.h"
#include "client/testable_device.h"
#include "queue/envelope.h"
#include "util/result.h"

namespace rrq::client {

/// Called for each reply, at least once per request. With a
/// TestableDevice configured, exactly once (the device's state
/// deduplicates). The second argument is true when this delivery may
/// be a repeat (post-recovery redelivery).
using ReplyProcessor =
    std::function<Status(const std::string& reply, bool maybe_duplicate)>;

struct ReliableClientOptions {
  ClerkOptions clerk;
  /// Optional: the non-idempotent output device replies are fed to.
  /// Not owned; outlives the client (it is "hardware").
  TestableDevice* device = nullptr;
  /// How many reconnect attempts before an operation reports
  /// Unavailable to the caller.
  int max_recovery_attempts = 32;
  /// How many Receive timeouts (each bounded by the clerk's
  /// receive_timeout_micros) to tolerate while waiting for a slow
  /// server, independent of the recovery budget.
  int max_poll_attempts = 200;
};

/// The complete client program of Fig 2: a fault-tolerant sequential
/// program wrapping a Clerk. Construction is cheap; Start() connects
/// and performs the connect-time resynchronization (lines 2–11 of
/// Fig 2), redelivering an unprocessed reply if the previous
/// incarnation crashed between receiving and processing it.
///
/// Execute() submits one request and returns its reply, transparently
/// riding out lost messages, queue-manager restarts, and partitions by
/// reconnecting and comparing rids. The guarantees delivered are the
/// paper's: exactly-once request processing, at-least-once reply
/// processing (exactly-once with a device).
class ReliableClient {
 public:
  ReliableClient(ReliableClientOptions options, ReplyProcessor processor);

  ReliableClient(const ReliableClient&) = delete;
  ReliableClient& operator=(const ReliableClient&) = delete;

  /// Connects and resynchronizes. If the previous incarnation died
  /// with a request in flight, its reply is received and processed
  /// here; if it died holding an unprocessed reply, the reply is
  /// reprocessed (unless the device proves it was processed).
  Status Start();

  /// Sends `request` under a fresh rid and returns the processed
  /// reply. Retries across failures until the reply is obtained or
  /// recovery attempts are exhausted.
  Result<std::string> Execute(const Slice& request);

  /// Cancels the in-flight request, if any (§7).
  Result<bool> CancelInFlight();

  Status Stop();

  /// Reconnects the clerk now (bounded attempts, like any recovery
  /// reconnect) and returns the connect-time resynchronization result
  /// — without receiving or processing a pending reply. For callers
  /// driving the clerk directly (a pipelined pool) that resolve the
  /// recovered rids themselves; Execute()'s own recovery never needs
  /// this.
  Result<ConnectResult> Resynchronize();

  /// Number of requests successfully completed by this incarnation.
  uint64_t completed() const { return completed_; }
  /// Replies that were (possibly) delivered more than once to the
  /// processor.
  uint64_t redeliveries() const { return redeliveries_; }
  /// Successful clerk reconnects (1 = just the initial Start connect;
  /// more = recoveries after connectivity loss).
  uint64_t reconnects() const { return reconnects_; }

  Clerk* clerk() { return clerk_.get(); }

 private:
  // Makes "<client_id>#<seq>" rids; seq continues from the recovered
  // rid so rids stay unique across incarnations.
  std::string MakeRid();
  static uint64_t ParseSeq(const std::string& rid);
  std::string DeviceState() const;
  Status ProcessReply(const std::string& reply, bool maybe_duplicate);
  // The receive loop shared by Execute and the Start-time resync:
  // polls for the reply to `rid`, riding out connectivity loss via
  // reconnect + Rereceive. Processes the reply before returning it.
  // `ckpt_hint` is the last Connect's ckpt (used by the device check
  // when the session resumed in Reply-Recvd).
  Result<std::string> AwaitReply(const std::string& rid,
                                 const std::string& ckpt_hint = "");
  // Unwraps a reply envelope and verifies Request-Reply Matching.
  Result<queue::ReplyEnvelope> DecodeAndCheck(const std::string& raw,
                                              const std::string& rid);
  // Reconnects and resolves the fate of rid `rid` (Fig 2's branches);
  // on success the session is in a state where the caller can proceed.
  Status Reconnect(ConnectResult* result);

  ReliableClientOptions options_;
  ReplyProcessor processor_;
  std::unique_ptr<Clerk> clerk_;
  uint64_t next_seq_ = 1;
  uint64_t completed_ = 0;
  uint64_t redeliveries_ = 0;
  uint64_t reconnects_ = 0;
  bool started_ = false;
};

}  // namespace rrq::client

#endif  // RRQ_CLIENT_RELIABLE_CLIENT_H_
