#include "client/streaming_client.h"

#include <chrono>
#include <thread>

namespace rrq::client {

StreamingClient::StreamingClient(Options options, StreamProcessor processor)
    : options_(std::move(options)), processor_(std::move(processor)) {
  slots_.resize(static_cast<size_t>(options_.window < 1 ? 1 : options_.window));
}

std::string StreamingClient::SlotRegistrant(int slot) const {
  return options_.client_id + "/s" + std::to_string(slot);
}

std::string StreamingClient::SlotReplyQueue(int slot) const {
  return options_.reply_queue_prefix + std::to_string(slot);
}

Status StreamingClient::ConnectSlot(int s) {
  ClerkOptions clerk_options;
  clerk_options.client_id = SlotRegistrant(s);
  clerk_options.request_queue = options_.request_queue;
  clerk_options.reply_queue = SlotReplyQueue(s);
  clerk_options.api = options_.api;
  clerk_options.receive_timeout_micros = options_.receive_timeout_micros;

  Slot& slot = slots_[static_cast<size_t>(s)];
  ConnectResult cr;
  Status last = Status::Unavailable("no connect attempts");
  bool connected = false;
  for (int attempt = 0;
       !connected && attempt < options_.max_recovery_attempts; ++attempt) {
    slot.clerk = std::make_unique<Clerk>(clerk_options);
    auto r = slot.clerk->Connect();
    if (r.ok()) {
      cr = *r;
      connected = true;
      break;
    }
    last = r.status();
    if (!last.IsUnavailable() && !last.IsTimedOut()) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt));
  }
  if (!connected) return last;

  // Advance the shared sequence past anything this slot recovered.
  const size_t pos = cr.s_rid.rfind('#');
  if (pos != std::string::npos) {
    const uint64_t seq = strtoull(cr.s_rid.c_str() + pos + 1, nullptr, 10);
    if (seq >= next_seq_) next_seq_ = seq + 1;
  }

  switch (cr.resumed_state) {
    case SessionState::kReqSent:
      // A request from a previous incarnation (or this one, before a
      // reconnect) is still outstanding on this slot.
      slot.awaiting = true;
      slot.rid = cr.s_rid;
      break;
    case SessionState::kReplyRecvd: {
      // The dequeue committed, but this incarnation cannot prove the
      // contents were processed — reread the retained copy (§3
      // Rereceive) and process it (at-least-once; duplicates are the
      // model's contract when no testable device is attached).
      Result<std::string> reread = Status::Unavailable("pending");
      for (int attempt = 0;
           !reread.ok() && attempt < options_.max_recovery_attempts;
           ++attempt) {
        reread = slot.clerk->Rereceive();
        if (!reread.ok() && !reread.status().IsUnavailable()) {
          return reread.status();
        }
      }
      RRQ_ASSIGN_OR_RETURN(std::string raw, std::move(reread));
      queue::ReplyEnvelope envelope;
      RRQ_RETURN_IF_ERROR(queue::DecodeReplyEnvelope(raw, &envelope));
      if (processor_ != nullptr) {
        RRQ_RETURN_IF_ERROR(
            processor_(envelope.rid, envelope.body, envelope.success));
      }
      ++completed_;
      if (slot.awaiting) {
        slot.awaiting = false;
        --in_flight_;
      }
      break;
    }
    default:
      slot.awaiting = false;
      break;
  }
  return Status::OK();
}

Status StreamingClient::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  for (int s = 0; s < static_cast<int>(slots_.size()); ++s) {
    RRQ_RETURN_IF_ERROR(ConnectSlot(s));
    if (slots_[static_cast<size_t>(s)].awaiting) ++in_flight_;
  }
  started_ = true;
  // Drain replies recovered as still-outstanding, so the window starts
  // fully usable.
  return Drain();
}

Result<bool> StreamingClient::TryCollect(int s) {
  Slot& slot = slots_[static_cast<size_t>(s)];
  if (!slot.awaiting) return false;
  auto reply = slot.clerk->Receive(Slice());
  if (reply.ok()) {
    queue::ReplyEnvelope envelope;
    RRQ_RETURN_IF_ERROR(queue::DecodeReplyEnvelope(*reply, &envelope));
    if (envelope.rid != slot.rid) {
      return Status::Internal("stream slot rid mismatch: expected " +
                              slot.rid + ", got " + envelope.rid);
    }
    if (processor_ != nullptr) {
      RRQ_RETURN_IF_ERROR(
          processor_(envelope.rid, envelope.body, envelope.success));
    }
    slot.awaiting = false;
    --in_flight_;
    ++completed_;
    return true;
  }
  const Status& status = reply.status();
  if (status.IsTimedOut() || status.IsBusy() || status.IsNotFound()) {
    return false;  // Not ready yet.
  }
  if (status.IsUnavailable() || status.IsNotConnected()) {
    // Reconnect the slot; ConnectSlot resolves its fate (including the
    // committed-but-unseen-reply case).
    const int before = in_flight_;
    RRQ_RETURN_IF_ERROR(ConnectSlot(s));
    return in_flight_ < before;
  }
  return status;
}

Result<int> StreamingClient::Poll() {
  if (!started_) return Status::FailedPrecondition("not started");
  int finished = 0;
  for (int s = 0; s < static_cast<int>(slots_.size()); ++s) {
    RRQ_ASSIGN_OR_RETURN(bool done, TryCollect(s));
    if (done) ++finished;
  }
  return finished;
}

Result<std::string> StreamingClient::Submit(const Slice& body) {
  if (!started_) return Status::FailedPrecondition("not started");
  // Find a free slot, polling the window until one opens.
  int free_slot = -1;
  for (int attempt = 0; attempt < options_.max_recovery_attempts * 8;
       ++attempt) {
    for (int s = 0; s < static_cast<int>(slots_.size()); ++s) {
      if (!slots_[static_cast<size_t>(s)].awaiting) {
        free_slot = s;
        break;
      }
    }
    if (free_slot >= 0) break;
    RRQ_RETURN_IF_ERROR(Poll().status());
  }
  if (free_slot < 0) return Status::Unavailable("window never opened");

  Slot& slot = slots_[static_cast<size_t>(free_slot)];
  const std::string rid =
      SlotRegistrant(free_slot) + "#" + std::to_string(next_seq_++);
  queue::RequestEnvelope envelope;
  envelope.rid = rid;
  envelope.reply_queue = SlotReplyQueue(free_slot);
  envelope.body = body.ToString();
  const std::string wire = queue::EncodeRequestEnvelope(envelope);

  for (int attempt = 0; attempt < options_.max_recovery_attempts; ++attempt) {
    Status s = slot.clerk->Send(wire, rid);
    if (s.ok()) {
      slot.awaiting = true;
      slot.rid = rid;
      ++in_flight_;
      return rid;
    }
    if (!s.IsUnavailable() && !s.IsNotConnected()) return s;
    // In-doubt send: reconnect and compare rids, as in Fig 2.
    RRQ_RETURN_IF_ERROR(ConnectSlot(free_slot));
    if (slot.clerk->last_sent_rid() == rid) {
      slot.awaiting = true;
      slot.rid = rid;
      ++in_flight_;
      return rid;
    }
  }
  return Status::Unavailable("could not submit " + rid);
}

Status StreamingClient::Drain() {
  int idle_rounds = 0;
  while (in_flight_ > 0) {
    RRQ_ASSIGN_OR_RETURN(int finished, Poll());
    if (finished == 0) {
      if (++idle_rounds > options_.max_recovery_attempts * 8) {
        return Status::Unavailable("drain stalled with " +
                                   std::to_string(in_flight_) +
                                   " requests outstanding");
      }
    } else {
      idle_rounds = 0;
    }
  }
  return Status::OK();
}

Status StreamingClient::Stop() {
  if (!started_) return Status::OK();
  started_ = false;
  Status result = Status::OK();
  for (Slot& slot : slots_) {
    if (slot.clerk != nullptr &&
        slot.clerk->state() != SessionState::kDisconnected) {
      Status s = slot.clerk->Disconnect();
      if (!s.ok() && result.ok()) result = s;
    }
  }
  return result;
}

}  // namespace rrq::client
