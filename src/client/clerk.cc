#include "client/clerk.h"

#include <memory>
#include <utility>

#include "util/coding.h"
#include "util/thread_annotations.h"

namespace rrq::client {

namespace {

// A failed Send whose enqueue certainly did not commit server-side:
// the session can stay where it is and the caller may simply retry or
// give up. Everything outside this whitelist — Unavailable, TimedOut,
// a Corruption on the *reply* decode (the op executed; its outcome is
// unreadable), IOError, Internal — is §2 uncertainty.
bool SendDefinitelyNotExecuted(const Status& s) {
  return s.IsNotFound() || s.IsInvalidArgument() || s.IsAlreadyExists() ||
         s.IsFailedPrecondition();
}

// A failed Receive whose destructive dequeue certainly did not commit:
// the reply simply is not there yet (server-side timeout, element
// locked, queue missing) and the session stays in Req-Sent to Receive
// again. Note Corruption is NOT here: a reply that arrived but failed
// to decode proves the dequeue executed — treating it as "poll again"
// silently loses the committed dequeue's element.
bool DequeueDefinitelyNotCommitted(const Status& s) {
  return s.IsTimedOut() || s.IsBusy() || s.IsNotFound() ||
         s.IsInvalidArgument() || s.IsFailedPrecondition();
}

}  // namespace

std::string EncodeReplyTag(const Slice& rid, const Slice& ckpt) {
  std::string tag;
  util::PutLengthPrefixed(&tag, rid);
  util::PutLengthPrefixed(&tag, ckpt);
  return tag;
}

Status DecodeReplyTag(const Slice& tag, std::string* rid, std::string* ckpt) {
  rid->clear();
  ckpt->clear();
  if (tag.empty()) return Status::OK();  // Fresh registration.
  Slice input = tag;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, rid));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, ckpt));
  return Status::OK();
}

Clerk::Clerk(ClerkOptions options) : options_(std::move(options)) {}

Result<ConnectResult> Clerk::Connect() {
  if (connected_) return Status::FailedPrecondition("already connected");

  // Register with both queues; stable registration hands back the tags
  // of this client's last incarnation (Fig 5's Connect).
  RRQ_ASSIGN_OR_RETURN(
      queue::RegistrationInfo req_info,
      options_.api->Register(options_.request_queue, options_.client_id,
                             /*stable=*/true));
  RRQ_ASSIGN_OR_RETURN(
      queue::RegistrationInfo reply_info,
      options_.api->Register(options_.reply_queue, options_.client_id,
                             /*stable=*/true));

  ConnectResult result;
  result.s_rid = req_info.last_tag;
  result.last_request_eid = req_info.last_eid;
  result.last_reply_eid = reply_info.last_eid;
  RRQ_RETURN_IF_ERROR(
      DecodeReplyTag(reply_info.last_tag, &result.r_rid, &result.ckpt));

  // Fig 1: the Connect branches to the state the rids imply.
  if (result.s_rid.empty()) {
    result.resumed_state = SessionState::kConnected;
  } else if (result.s_rid != result.r_rid) {
    result.resumed_state = SessionState::kReqSent;
  } else {
    result.resumed_state = SessionState::kReplyRecvd;
  }
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kConnect));
  RRQ_RETURN_IF_ERROR(machine_.ResumeAt(result.resumed_state));

  connected_ = true;
  rid_tag_ = result.s_rid;
  last_request_eid_ = result.last_request_eid;
  last_reply_eid_ = result.last_reply_eid;
  return result;
}

Status Clerk::Disconnect() {
  if (!connected_) return Status::FailedPrecondition("not connected");
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kDisconnect));
  connected_ = false;
  Status s1 = options_.api->Deregister(options_.request_queue,
                                       options_.client_id);
  // With a self-loop clerk (request queue == reply queue) there is only
  // one registration to drop.
  if (options_.reply_queue == options_.request_queue) return s1;
  Status s2 = options_.api->Deregister(options_.reply_queue,
                                       options_.client_id);
  if (!s1.ok()) return s1;
  return s2;
}

void Clerk::ResetSession() {
  // The op is in doubt (e.g. lost acknowledgement). The session is no
  // longer usable; the client resolves the doubt by reconnecting and
  // comparing rids (§2). Reflect that by disconnecting locally.
  machine_ = SessionStateMachine();
  connected_ = false;
}

Status Clerk::FinishSend(const std::string& rid,
                         const Result<queue::ElementId>& r) {
  if (!r.ok()) {
    if (!SendDefinitelyNotExecuted(r.status())) ResetSession();
    return r.status();
  }
  // The transition was Check()ed before the enqueue was issued, so this
  // cannot fail while the clerk's one-op-at-a-time contract holds.
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kSend));
  rid_tag_ = rid;
  last_request_eid_ = *r;  // kInvalidElementId in one-way mode.
  return Status::OK();
}

Status Clerk::Send(const Slice& request, const std::string& rid) {
  if (!connected_) return Status::NotConnected("Send before Connect");
  if (rid.empty()) return Status::InvalidArgument("rid must be non-empty");
  RRQ_RETURN_IF_ERROR(machine_.Check(SessionEvent::kSend));

  auto r = options_.api->Enqueue(options_.request_queue, request,
                                 options_.request_priority,
                                 options_.client_id, rid,
                                 options_.send_mode == SendMode::kOneWay);
  return FinishSend(rid, r);
}

void Clerk::SendAsync(const Slice& request, const std::string& rid,
                      std::function<void(Status)> done) {
  if (!connected_) {
    done(Status::NotConnected("Send before Connect"));
    return;
  }
  if (rid.empty()) {
    done(Status::InvalidArgument("rid must be non-empty"));
    return;
  }
  if (Status s = machine_.Check(SessionEvent::kSend); !s.ok()) {
    done(std::move(s));
    return;
  }
  options_.api->EnqueueAsync(
      options_.request_queue, request, options_.request_priority,
      options_.client_id, rid,
      options_.send_mode == SendMode::kOneWay,
      [this, rid, done = std::move(done)](Result<queue::ElementId> r) {
        done(FinishSend(rid, r));
      });
}

Result<std::string> Clerk::FinishReceive(Result<queue::Element> r) {
  if (!r.ok()) {
    if (!DequeueDefinitelyNotCommitted(r.status())) {
      // The dequeue may have committed (connectivity lost, deadline
      // expired, or the reply arrived unreadable): stay would-be
      // Req-Sent forever. Drop the session; re-Connect sees r_rid and
      // recovers the element via Rereceive.
      ResetSession();
    }
    return r.status();
  }
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kReceiveReply));
  last_reply_eid_ = r->eid;
  return std::move(r->contents);
}

Result<std::string> Clerk::Receive(const Slice& ckpt) {
  if (!connected_) return Status::NotConnected("Receive before Connect");
  if (machine_.state() != SessionState::kReqSent) {
    return Status::FailedPrecondition("Receive without an outstanding request");
  }

  const std::string tag = EncodeReplyTag(rid_tag_, ckpt);
  auto r = options_.api->Dequeue(options_.reply_queue, options_.client_id,
                                 tag, options_.receive_timeout_micros);
  return FinishReceive(std::move(r));
}

void Clerk::ReceiveAsync(const Slice& ckpt,
                         std::function<void(Result<std::string>)> done) {
  if (!connected_) {
    done(Status::NotConnected("Receive before Connect"));
    return;
  }
  if (machine_.state() != SessionState::kReqSent) {
    done(Status::FailedPrecondition("Receive without an outstanding request"));
    return;
  }
  const std::string tag = EncodeReplyTag(rid_tag_, ckpt);
  options_.api->DequeueAsync(
      options_.reply_queue, options_.client_id, tag,
      options_.receive_timeout_micros,
      [this, done = std::move(done)](Result<queue::Element> r) {
        done(FinishReceive(std::move(r)));
      });
}

Result<std::string> Clerk::Rereceive() {
  if (!connected_) return Status::NotConnected("Rereceive before Connect");
  if (last_reply_eid_ == queue::kInvalidElementId) {
    return Status::FailedPrecondition("no previously received reply");
  }
  RRQ_ASSIGN_OR_RETURN(queue::Element element,
                       options_.api->Read(options_.reply_queue,
                                          last_reply_eid_));
  return element.contents;
}

Result<std::string> Clerk::Transceive(const Slice& request,
                                      const std::string& rid,
                                      const Slice& ckpt) {
  RRQ_RETURN_IF_ERROR(Send(request, rid));
  return Receive(ckpt);
}

void Clerk::TransceiveAsync(const Slice& request, const std::string& rid,
                            const Slice& ckpt, bool overlap_receive,
                            std::function<void(Result<std::string>)> done) {
  if (!overlap_receive || options_.receive_timeout_micros == 0) {
    // Serialized chain: the dequeue goes out only after the enqueue's
    // acknowledgement, exactly like the sync Transceive but without a
    // blocked thread between the two.
    SendAsync(request, rid,
              [this, ckpt = ckpt.ToString(),
               done = std::move(done)](Status s) mutable {
                if (!s.ok()) {
                  done(std::move(s));
                  return;
                }
                ReceiveAsync(ckpt, std::move(done));
              });
    return;
  }

  if (!connected_) {
    done(Status::NotConnected("Transceive before Connect"));
    return;
  }
  if (rid.empty()) {
    done(Status::InvalidArgument("rid must be non-empty"));
    return;
  }
  if (Status s = machine_.Check(SessionEvent::kSend); !s.ok()) {
    done(std::move(s));
    return;
  }

  // Window of two: the enqueue and the reply dequeue leave together
  // (one corked send, one round trip). The session optimistically
  // enters Req-Sent so the dequeue's tag carries this rid; clerk state
  // is otherwise only touched by whichever completion fires last, so
  // the two in-flight ops never race on it.
  {
    Status applied = machine_.Apply(SessionEvent::kSend);
    if (!applied.ok()) {
      done(std::move(applied));
      return;
    }
  }
  rid_tag_ = rid;

  struct Op {
    Clerk* clerk;
    std::function<void(Result<std::string>)> done;
    Mutex mu;
    int pending GUARDED_BY(mu) = 2;
    Status send_status;
    queue::ElementId send_eid = queue::kInvalidElementId;
    Status recv_status;
    std::string reply;
    queue::ElementId reply_eid = queue::kInvalidElementId;

    void Complete() {
      bool last = false;
      {
        MutexLock lock(mu);
        last = --pending == 0;
      }
      if (!last) return;
      Clerk* c = clerk;
      if (send_status.ok() && recv_status.ok()) {
        c->last_request_eid_ = send_eid;
        Status applied = c->machine_.Apply(SessionEvent::kReceiveReply);
        if (!applied.ok()) {
          done(std::move(applied));
          return;
        }
        c->last_reply_eid_ = reply_eid;
        done(std::move(reply));
        return;
      }
      // Overlapped mode folds every failure into §2 uncertainty: the
      // enqueue and/or dequeue may have committed; re-Connect decides.
      c->ResetSession();
      done(!send_status.ok() ? std::move(send_status)
                             : std::move(recv_status));
    }
  };
  auto op = std::make_shared<Op>();
  op->clerk = this;
  op->done = std::move(done);

  const std::string tag = EncodeReplyTag(rid, ckpt);
  options_.api->EnqueueAsync(
      options_.request_queue, request, options_.request_priority,
      options_.client_id, rid, options_.send_mode == SendMode::kOneWay,
      [op](Result<queue::ElementId> r) {
        if (r.ok()) {
          op->send_eid = *r;
        } else {
          op->send_status = r.status();
        }
        op->Complete();
      });
  options_.api->DequeueAsync(
      options_.reply_queue, options_.client_id, tag,
      options_.receive_timeout_micros, [op](Result<queue::Element> r) {
        if (r.ok()) {
          op->reply = std::move(r->contents);
          op->reply_eid = r->eid;
        } else {
          op->recv_status = r.status();
        }
        op->Complete();
      });
}

Result<bool> Clerk::CancelLastRequest() {
  if (!connected_) return Status::NotConnected("Cancel before Connect");
  if (last_request_eid_ == queue::kInvalidElementId) {
    return Status::FailedPrecondition(
        "no cancellable request (none sent, or sent one-way)");
  }
  RRQ_ASSIGN_OR_RETURN(bool killed, options_.api->KillElement(
                                        options_.request_queue,
                                        last_request_eid_));
  return killed;
}

}  // namespace rrq::client
