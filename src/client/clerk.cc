#include "client/clerk.h"

#include "util/coding.h"

namespace rrq::client {

std::string EncodeReplyTag(const Slice& rid, const Slice& ckpt) {
  std::string tag;
  util::PutLengthPrefixed(&tag, rid);
  util::PutLengthPrefixed(&tag, ckpt);
  return tag;
}

Status DecodeReplyTag(const Slice& tag, std::string* rid, std::string* ckpt) {
  rid->clear();
  ckpt->clear();
  if (tag.empty()) return Status::OK();  // Fresh registration.
  Slice input = tag;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, rid));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, ckpt));
  return Status::OK();
}

Clerk::Clerk(ClerkOptions options) : options_(std::move(options)) {}

Result<ConnectResult> Clerk::Connect() {
  if (connected_) return Status::FailedPrecondition("already connected");

  // Register with both queues; stable registration hands back the tags
  // of this client's last incarnation (Fig 5's Connect).
  RRQ_ASSIGN_OR_RETURN(
      queue::RegistrationInfo req_info,
      options_.api->Register(options_.request_queue, options_.client_id,
                             /*stable=*/true));
  RRQ_ASSIGN_OR_RETURN(
      queue::RegistrationInfo reply_info,
      options_.api->Register(options_.reply_queue, options_.client_id,
                             /*stable=*/true));

  ConnectResult result;
  result.s_rid = req_info.last_tag;
  result.last_request_eid = req_info.last_eid;
  result.last_reply_eid = reply_info.last_eid;
  RRQ_RETURN_IF_ERROR(
      DecodeReplyTag(reply_info.last_tag, &result.r_rid, &result.ckpt));

  // Fig 1: the Connect branches to the state the rids imply.
  if (result.s_rid.empty()) {
    result.resumed_state = SessionState::kConnected;
  } else if (result.s_rid != result.r_rid) {
    result.resumed_state = SessionState::kReqSent;
  } else {
    result.resumed_state = SessionState::kReplyRecvd;
  }
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kConnect));
  RRQ_RETURN_IF_ERROR(machine_.ResumeAt(result.resumed_state));

  connected_ = true;
  rid_tag_ = result.s_rid;
  last_request_eid_ = result.last_request_eid;
  last_reply_eid_ = result.last_reply_eid;
  return result;
}

Status Clerk::Disconnect() {
  if (!connected_) return Status::FailedPrecondition("not connected");
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kDisconnect));
  connected_ = false;
  Status s1 = options_.api->Deregister(options_.request_queue,
                                       options_.client_id);
  Status s2 = options_.api->Deregister(options_.reply_queue,
                                       options_.client_id);
  if (!s1.ok()) return s1;
  return s2;
}

Status Clerk::Send(const Slice& request, const std::string& rid) {
  if (!connected_) return Status::NotConnected("Send before Connect");
  if (rid.empty()) return Status::InvalidArgument("rid must be non-empty");
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kSend));

  auto r = options_.api->Enqueue(options_.request_queue, request,
                                 options_.request_priority,
                                 options_.client_id, rid,
                                 options_.send_mode == SendMode::kOneWay);
  if (!r.ok()) {
    // The send is in doubt (e.g. lost acknowledgement). The session is
    // no longer usable; the client resolves the doubt by reconnecting
    // and comparing rids (§2). Reflect that by disconnecting locally.
    machine_ = SessionStateMachine();
    connected_ = false;
    return r.status();
  }
  rid_tag_ = rid;
  last_request_eid_ = *r;  // kInvalidElementId in one-way mode.
  return Status::OK();
}

Result<std::string> Clerk::Receive(const Slice& ckpt) {
  if (!connected_) return Status::NotConnected("Receive before Connect");
  if (machine_.state() != SessionState::kReqSent) {
    return Status::FailedPrecondition("Receive without an outstanding request");
  }

  const std::string tag = EncodeReplyTag(rid_tag_, ckpt);
  auto r = options_.api->Dequeue(options_.reply_queue, options_.client_id,
                                 tag, options_.receive_timeout_micros);
  if (!r.ok()) {
    if (r.status().IsUnavailable()) {
      // Connectivity lost mid-dequeue: the dequeue may or may not have
      // committed. Resolve by reconnecting.
      machine_ = SessionStateMachine();
      connected_ = false;
    }
    return r.status();
  }
  RRQ_RETURN_IF_ERROR(machine_.Apply(SessionEvent::kReceiveReply));
  last_reply_eid_ = r->eid;
  return r->contents;
}

Result<std::string> Clerk::Rereceive() {
  if (!connected_) return Status::NotConnected("Rereceive before Connect");
  if (last_reply_eid_ == queue::kInvalidElementId) {
    return Status::FailedPrecondition("no previously received reply");
  }
  RRQ_ASSIGN_OR_RETURN(queue::Element element,
                       options_.api->Read(options_.reply_queue,
                                          last_reply_eid_));
  return element.contents;
}

Result<std::string> Clerk::Transceive(const Slice& request,
                                      const std::string& rid,
                                      const Slice& ckpt) {
  RRQ_RETURN_IF_ERROR(Send(request, rid));
  return Receive(ckpt);
}

Result<bool> Clerk::CancelLastRequest() {
  if (!connected_) return Status::NotConnected("Cancel before Connect");
  if (last_request_eid_ == queue::kInvalidElementId) {
    return Status::FailedPrecondition(
        "no cancellable request (none sent, or sent one-way)");
  }
  RRQ_ASSIGN_OR_RETURN(bool killed, options_.api->KillElement(
                                        options_.request_queue,
                                        last_request_eid_));
  return killed;
}

}  // namespace rrq::client
