#ifndef RRQ_NET_QUEUE_WIRE_H_
#define RRQ_NET_QUEUE_WIRE_H_

#include <functional>
#include <string>

#include "net/transport.h"
#include "queue/queue_api.h"
#include "queue/queue_repository.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::net {

// The queue-service byte protocol: how a clerk's QueueApi calls are
// serialized for any transport (the simulated comm::Network or a real
// TCP connection to an rrqd daemon). One opcode byte, then the queue
// name, then per-op fields; replies carry an app-level Status followed
// by the result payload. Decoders fail closed — truncated or invalid
// bytes yield Corruption/InvalidArgument, never undefined behavior —
// because on a real socket this is the trust boundary.

constexpr unsigned char kOpRegister = 1;
constexpr unsigned char kOpDeregister = 2;
constexpr unsigned char kOpEnqueue = 3;
constexpr unsigned char kOpDequeue = 4;
constexpr unsigned char kOpRead = 5;
constexpr unsigned char kOpKill = 6;
// Admin extensions, used by out-of-process clients to provision their
// reply queues on the daemon and to observe depths.
constexpr unsigned char kOpCreateQueue = 7;
constexpr unsigned char kOpDepth = 8;
// Replication admin ops (PR 9): observe the shipping pipeline and
// promote a backup to primary. Both carry an empty queue-name field so
// every request keeps the [op][queue][fields] shape.
constexpr unsigned char kOpReplStatus = 9;
constexpr unsigned char kOpPromote = 10;

/// Snapshot of a daemon's replication posture, served by kOpReplStatus
/// (both roles answer it; fields that don't apply are empty/zero).
struct ReplStatusInfo {
  /// "primary" | "backup" | "standalone".
  std::string role;
  /// Sender pipeline state on a primary ("shipping", "snapshot", ...);
  /// "applying" / "promoted" on a backup.
  std::string state;
  uint64_t stream_id = 0;
  /// Primary: highest sequence the backup acked. Backup: its applied
  /// watermark.
  uint64_t acked_seq = 0;
  /// Primary: newest sequence produced. Backup: equal to acked_seq.
  uint64_t head_seq = 0;
  uint64_t reconnects = 0;
  bool promoted = false;
  std::string last_error;
};

void EncodeReplStatusInfo(const ReplStatusInfo& info, std::string* out);
Status DecodeReplStatusInfo(Slice* input, ReplStatusInfo* info);

void EncodeElement(const queue::Element& e, std::string* out);
Status DecodeElement(Slice* input, queue::Element* e);
void EncodeQueueOptions(const queue::QueueOptions& options, std::string* out);
Status DecodeQueueOptions(Slice* input, queue::QueueOptions* options);

/// True when `request` is an op that may park its server thread for a
/// long time — a Dequeue carrying a nonzero wait timeout. The TCP
/// server's blocking hint (TcpServer::set_blocking_hint) uses this to
/// keep long-polls off the bounded worker pool. Malformed requests
/// return false (the dispatcher rejects them quickly anyway).
bool QueueRequestMayBlock(const Slice& request);

/// Transit margin added on top of a blocking Dequeue's server-side
/// wait bound when deriving the transport call deadline
/// (CallOptions::min_deadline_micros = timeout + margin): the server
/// is allowed to park for the full `timeout_micros`, so the client
/// must outwait that plus scheduling and wire latency. Without this a
/// long-poll whose timeout exceeds the channel's default deadline is
/// expired client-side while the server's *destructive* dequeue can
/// still commit — the reply is then discarded as a late straggler and
/// the element is silently lost to the clerk.
constexpr uint64_t kBlockingCallMarginMicros = 5'000'000;

/// Serves the byte protocol against a local repository. This is the
/// whole server side of the protocol: the simulated QueueService and
/// the rrqd daemon's TCP loop both delegate here, so every transport
/// speaks identical bytes. At-most-once per message, no retry or
/// deduplication — the uncertainty on failure is the client
/// protocol's to resolve (§2).
class QueueServiceDispatcher {
 public:
  /// `repo` is not owned and must outlive the dispatcher.
  explicit QueueServiceDispatcher(queue::QueueRepository* repo) : repo_(repo) {}

  /// Decodes one request and executes it. Malformed requests return
  /// Corruption/InvalidArgument with `*reply` untouched; well-formed
  /// requests return OK with the app-level status encoded inside
  /// `*reply`.
  Status Handle(const Slice& request, std::string* reply);

  // ---- Replication hooks (all optional; set before serving) ----------

  /// Serves kOpReplStatus. Unset: the op reports a standalone daemon.
  void set_replication_status_fn(std::function<ReplStatusInfo()> fn) {
    repl_status_fn_ = std::move(fn);
  }
  /// Serves kOpPromote. Unset: the op fails FailedPrecondition (only a
  /// backup can be promoted).
  void set_promote_fn(std::function<Status()> fn) {
    promote_fn_ = std::move(fn);
  }
  /// Consulted before every state-mutating op (register, enqueue,
  /// dequeue, kill, create). A non-OK return is sent to the client as
  /// the op's status — how an unpromoted backup refuses writes while
  /// still answering reads and admin ops. Must be thread-safe.
  void set_write_gate(std::function<Status()> gate) {
    write_gate_ = std::move(gate);
  }

 private:
  queue::QueueRepository* repo_;
  std::function<ReplStatusInfo()> repl_status_fn_;
  std::function<Status()> promote_fn_;
  std::function<Status()> write_gate_;
};

/// queue::QueueApi over any Channel speaking the byte protocol — the
/// client side, shared by the simulated comm::RemoteQueueApi and the
/// TCP-backed TcpRemoteQueueApi. Transport failures surface as
/// Unavailable; the clerk resolves the resulting uncertainty through
/// reconnection and persistent registration, never blind retry.
///
/// Holds no per-call state, so it is exactly as thread-safe as its
/// channel: over a multiplexed TcpChannel, one shared ChannelQueueApi
/// serves many clerk threads, their calls pipelined on one socket.
/// The *Async variants put multiple queue ops in flight from a single
/// thread; callbacks follow Channel::CallAsync's rules (may run on the
/// channel's demux thread, must not block).
class ChannelQueueApi final : public queue::QueueApi {
 public:
  /// `channel` is not owned and must outlive this object.
  explicit ChannelQueueApi(Channel* channel) : channel_(channel) {}

  Result<queue::RegistrationInfo> Register(const std::string& queue,
                                           const std::string& registrant,
                                           bool stable) override;
  Status Deregister(const std::string& queue,
                    const std::string& registrant) override;
  Result<queue::ElementId> Enqueue(const std::string& queue,
                                   const Slice& contents, uint32_t priority,
                                   const std::string& registrant,
                                   const Slice& tag, bool one_way) override;
  Result<queue::Element> Dequeue(const std::string& queue,
                                 const std::string& registrant,
                                 const Slice& tag,
                                 uint64_t timeout_micros) override;
  Result<queue::Element> Read(const std::string& queue,
                              queue::ElementId eid) override;
  Result<bool> KillElement(const std::string& queue,
                           queue::ElementId eid) override;

  // ---- Pipelined variants -------------------------------------------
  // True wire concurrency over a v2 channel: multiple ops in flight
  // from a single thread, completions demuxed by correlation id.

  void EnqueueAsync(const std::string& queue, const Slice& contents,
                    uint32_t priority, const std::string& registrant,
                    const Slice& tag, bool one_way,
                    std::function<void(Result<queue::ElementId>)> done) override;
  void DequeueAsync(const std::string& queue, const std::string& registrant,
                    const Slice& tag, uint64_t timeout_micros,
                    std::function<void(Result<queue::Element>)> done) override;

  // ---- Admin extensions (not part of QueueApi) ----------------------

  /// Creates `queue` on the remote repository (a remote client's only
  /// way to provision its private reply queue).
  Status CreateQueue(const std::string& queue,
                     const queue::QueueOptions& options = {});
  Result<size_t> Depth(const std::string& queue);
  /// Replication posture of the daemon (either role).
  Result<ReplStatusInfo> ReplicationStatus();
  /// Promotes a backup daemon to primary (idempotent; the daemon
  /// starts accepting writes and refuses further replication).
  Status Promote();

 private:
  Status CallService(const std::string& request, std::string* payload,
                     const CallOptions& options = {});

  Channel* channel_;
};

}  // namespace rrq::net

#endif  // RRQ_NET_QUEUE_WIRE_H_
