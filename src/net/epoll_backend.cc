// Readiness-based ServerIoBackend: the epoll loop that shipped in
// PR 5, moved verbatim-in-spirit behind the IoBackend seam. This is
// the only translation unit besides uring_backend.cc allowed to make
// raw epoll_* calls (enforced by scripts/check_invariants.sh).

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <unordered_map>

#include "net/io_backend.h"
#include "net/socket_util.h"

namespace rrq::net {
namespace {

class EpollServerBackend final : public ServerIoBackend {
 public:
  explicit EpollServerBackend(IoCounters* counters) : counters_(counters) {}
  ~EpollServerBackend() override { Shutdown(); }

  Status Start(int listen_fd, int wake_fd, Sink* sink) override {
    listen_fd_ = listen_fd;
    wake_fd_ = wake_fd;
    sink_ = sink;
    epoll_fd_ = epoll_create1(0);
    if (epoll_fd_ < 0) return internal::Errno("epoll_create1");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = wake_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    return Status::OK();
  }

  void Shutdown() override {
    if (epoll_fd_ >= 0) close(epoll_fd_);
    epoll_fd_ = -1;
    conns_.clear();
  }

  Status SubmitRecv(const std::shared_ptr<ServerConn>& conn) override {
    conns_[conn->fd] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      conns_.erase(conn->fd);
      return internal::Errno("epoll_ctl add");
    }
    return Status::OK();
  }

  void SubmitWritev(const std::shared_ptr<ServerConn>& conn) override {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void Retire(const std::shared_ptr<ServerConn>& conn) override {
    // The caller already closed conn->fd, which removed it from the
    // epoll set; only the roster entry remains.
    conns_.erase(conn->fd);
  }

  Status Wait() override {
    epoll_event events[128];
    int n;
    do {
      counters_->waits.fetch_add(1, std::memory_order_relaxed);
      n = epoll_wait(epoll_fd_, events, 128, -1);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return internal::Errno("epoll_wait");
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t tick;
        while (read(wake_fd_, &tick, sizeof(tick)) > 0) {
        }
        counters_->recvs.fetch_add(1, std::memory_order_relaxed);
        sink_->OnWake();
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier in this batch.
      std::shared_ptr<ServerConn> conn = it->second;
      if (events[i].events & EPOLLERR) {
        sink_->OnConnError(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      auto again = conns_.find(fd);
      if (again == conns_.end() || again->second != conn) continue;
      if (events[i].events & (EPOLLIN | EPOLLHUP)) HandleReadable(conn);
    }
    return Status::OK();
  }

  const char* name() const override { return "epoll"; }

 private:
  void HandleAccept() {
    while (true) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN: drained (or transient; epoll re-fires).
      }
      sink_->OnAccepted(fd);
    }
  }

  void HandleReadable(const std::shared_ptr<ServerConn>& conn) {
    char buf[65536];
    // Bounded reads per wakeup so one firehose connection cannot pin
    // the loop; level-triggered epoll re-fires for the rest.
    for (int round = 0; round < 4; ++round) {
      const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      counters_->recvs.fetch_add(1, std::memory_order_relaxed);
      if (n > 0) {
        sink_->OnRecvData(conn, Slice(buf, static_cast<size_t>(n)));
        // The sink may have retired the connection (protocol error).
        auto it = conns_.find(conn->fd);
        if (it == conns_.end() || it->second != conn) return;
        continue;
      }
      if (n == 0) {
        sink_->OnRecvEof(conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      sink_->OnConnError(conn);  // Reset: the peer is gone.
      return;
    }
  }

  void HandleWritable(const std::shared_ptr<ServerConn>& conn) {
    bool failed;
    bool drained;
    {
      MutexLock guard(conn->mu);
      if (conn->closed) return;
      conn->want_write = false;
      FlushOutboxLocked(conn.get(), counters_);
      failed = conn->write_failed;
      drained = !conn->want_write;
    }
    if (failed) {
      sink_->OnConnError(conn);
      return;
    }
    if (drained) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    }
  }

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  Sink* sink_ = nullptr;
  // Loop-thread-only roster mirror (epoll events carry only the fd).
  std::unordered_map<int, std::shared_ptr<ServerConn>> conns_;
  IoCounters* const counters_;
};

}  // namespace

std::unique_ptr<ServerIoBackend> CreateEpollServerBackend(IoCounters* counters) {
  return std::make_unique<EpollServerBackend>(counters);
}

}  // namespace rrq::net
