#ifndef RRQ_NET_URING_BACKEND_H_
#define RRQ_NET_URING_BACKEND_H_

/// io_uring side of the IoBackend seam. Everything that talks to the
/// ring — the runtime capability probe, the server completion loop,
/// and the client channel's ring I/O — lives behind this header so
/// uring_backend.cc is the only translation unit with raw io_uring_*
/// syscalls (scripts/check_invariants.sh enforces this).
///
/// The image has no liburing, so uring_backend.cc drives the rings
/// with raw syscall(2) + mmap and release/acquire atomics, mirroring
/// what liburing's fast path does.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/io_backend.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::net {

namespace uring_internal {
class Ring;  // raw SQ/CQ wrapper, defined in uring_backend.cc
}

/// Ring-driven I/O for one TcpChannel connection: the demux reader
/// parks in one io_uring_enter that simultaneously submits the corked
/// request bytes, re-arms the receive, and reaps reply completions —
/// the "one syscall per pipelined burst" path of DESIGN.md §13.
///
/// All methods are reader-thread-only. Counters are shared with the
/// owning channel so epoll/poll and uring runs report through the same
/// TcpChannel::io_stats() surface.
class ClientUringIo {
 public:
  /// Returns null (with a reason) when the ring cannot be set up; the
  /// channel then falls back to the poll()-based reader loop.
  static std::unique_ptr<ClientUringIo> Create(int sock_fd, int wake_fd,
                                               IoCounters* counters,
                                               std::string* reason);
  ~ClientUringIo();

  ClientUringIo(const ClientUringIo&) = delete;
  ClientUringIo& operator=(const ClientUringIo&) = delete;

  /// Hands one buffer to the ring for transmission. At most one send
  /// may be in flight: the combining-writer holds `writer_active` from
  /// QueueSend until Events::send_done, so frame bytes hit the socket
  /// exactly once and in order (§2 never-resend: a short send is
  /// resumed at its byte offset, never re-encoded).
  void QueueSend(std::string data);
  bool send_inflight() const { return send_inflight_; }

  struct Events {
    bool wake = false;       // wake eventfd fired (already drained)
    bool eof = false;        // peer closed the connection
    bool send_done = false;  // the QueueSend'd buffer fully left
    bool timed_out = false;  // deadline expired with no completion
    Status error;            // hard recv/send/ring failure
  };

  /// One blocking cycle: submits pending SQEs (send, recv re-arm) and
  /// waits up to `timeout_micros` (UINT64_MAX = forever) unless
  /// completions are already queued. Received chunks are delivered via
  /// `on_recv` (data valid only during the call); everything else is
  /// reported through `*ev`. `expect_reply` says the caller has calls
  /// outstanding, so a freshly submitted send's inline completion need
  /// not end the wait by itself — the reply (or EOF) will.
  void Wait(uint64_t timeout_micros, bool expect_reply,
            const std::function<void(Slice)>& on_recv, Events* ev);

 private:
  ClientUringIo(std::unique_ptr<uring_internal::Ring> ring, int sock_fd,
                int wake_fd, IoCounters* counters);

  bool PrepPending();  // false when the ring is wedged (sets wedged_)

  std::unique_ptr<uring_internal::Ring> ring_;
  const int sock_fd_;
  const int wake_fd_;
  IoCounters* const counters_;

  std::string recv_buf_;
  bool recv_armed_ = false;
  bool wake_armed_ = false;

  std::string send_buf_;
  size_t send_off_ = 0;  // bytes of send_buf_ already accepted by the kernel
  bool send_inflight_ = false;
  bool send_submitted_ = false;

  Status wedged_ = Status::OK();
};

}  // namespace rrq::net

#endif  // RRQ_NET_URING_BACKEND_H_
