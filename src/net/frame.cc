#include "net/frame.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace rrq::net {

void AppendFrame(std::string* out, const Slice& payload) {
  util::PutFixed32(out, static_cast<uint32_t>(payload.size()));
  util::PutFixed32(
      out, util::crc32c::Mask(util::crc32c::Value(payload.data(),
                                                  payload.size())));
  out->append(payload.data(), payload.size());
}

void EncodeStatus(const Status& s, std::string* out) {
  util::PutVarint32(out, static_cast<uint32_t>(s.code()));
  util::PutLengthPrefixed(out, s.message());
}

Status DecodeStatus(Slice* input) {
  uint32_t code = 0;
  std::string message;
  if (!util::GetVarint32(input, &code).ok() ||
      !util::GetLengthPrefixedString(input, &message).ok() ||
      code > static_cast<uint32_t>(StatusCode::kInternal)) {
    return Status::Corruption("malformed status in reply");
  }
  if (code == 0) return Status::OK();
  return Status(static_cast<StatusCode>(code), message);
}

void FrameReader::Feed(const Slice& data) {
  // Compact the consumed prefix before growing the buffer further.
  if (pos_ > 0 && (pos_ == buffer_.size() || pos_ >= 4096)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data.data(), data.size());
}

Status FrameReader::Next(std::string* payload) {
  if (poisoned_) return Status::Corruption("frame stream is poisoned");
  if (buffer_.size() - pos_ < kFrameHeaderSize) {
    return Status::NotFound("incomplete frame header");
  }
  const uint32_t length = util::DecodeFixed32(buffer_.data() + pos_);
  if (length > kMaxFramePayload) {
    poisoned_ = true;
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds limit");
  }
  if (buffer_.size() - pos_ - kFrameHeaderSize < length) {
    return Status::NotFound("incomplete frame payload");
  }
  const uint32_t expected =
      util::crc32c::Unmask(util::DecodeFixed32(buffer_.data() + pos_ + 4));
  const char* data = buffer_.data() + pos_ + kFrameHeaderSize;
  if (util::crc32c::Value(data, length) != expected) {
    poisoned_ = true;
    return Status::Corruption("frame CRC mismatch");
  }
  payload->assign(data, length);
  pos_ += kFrameHeaderSize + length;
  return Status::OK();
}

Status FrameReader::AtEnd() const {
  if (poisoned_) return Status::Corruption("frame stream is poisoned");
  if (buffered() != 0) {
    return Status::Corruption("torn frame: stream ended with " +
                              std::to_string(buffered()) + " stray bytes");
  }
  return Status::OK();
}

}  // namespace rrq::net
