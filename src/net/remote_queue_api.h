#ifndef RRQ_NET_REMOTE_QUEUE_API_H_
#define RRQ_NET_REMOTE_QUEUE_API_H_

#include <string>

#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/queue_api.h"

namespace rrq::net {

/// queue::QueueApi over a real TCP connection to an rrqd daemon. The
/// clerk/ReliableClient code runs unmodified against this: transport
/// failures surface as Unavailable, and the client protocol resolves
/// the resulting §2 uncertainty through reconnection and persistent
/// registration. Owns its channel; since wire v2 the channel
/// multiplexes, so one TcpRemoteQueueApi can be shared by many clerk
/// threads — their calls pipeline on the single connection, each with
/// its own correlation id and deadline (against a v1 daemon the
/// channel falls back to serialized calls, which is merely slower).
class TcpRemoteQueueApi final : public queue::QueueApi {
 public:
  explicit TcpRemoteQueueApi(TcpChannelOptions options)
      : channel_(std::move(options)), api_(&channel_) {}

  Result<queue::RegistrationInfo> Register(const std::string& queue,
                                           const std::string& registrant,
                                           bool stable) override {
    return api_.Register(queue, registrant, stable);
  }
  Status Deregister(const std::string& queue,
                    const std::string& registrant) override {
    return api_.Deregister(queue, registrant);
  }
  Result<queue::ElementId> Enqueue(const std::string& queue,
                                   const Slice& contents, uint32_t priority,
                                   const std::string& registrant,
                                   const Slice& tag, bool one_way) override {
    return api_.Enqueue(queue, contents, priority, registrant, tag, one_way);
  }
  Result<queue::Element> Dequeue(const std::string& queue,
                                 const std::string& registrant,
                                 const Slice& tag,
                                 uint64_t timeout_micros) override {
    return api_.Dequeue(queue, registrant, tag, timeout_micros);
  }
  Result<queue::Element> Read(const std::string& queue,
                              queue::ElementId eid) override {
    return api_.Read(queue, eid);
  }
  Result<bool> KillElement(const std::string& queue,
                           queue::ElementId eid) override {
    return api_.KillElement(queue, eid);
  }
  void EnqueueAsync(
      const std::string& queue, const Slice& contents, uint32_t priority,
      const std::string& registrant, const Slice& tag, bool one_way,
      std::function<void(Result<queue::ElementId>)> done) override {
    api_.EnqueueAsync(queue, contents, priority, registrant, tag, one_way,
                      std::move(done));
  }
  void DequeueAsync(
      const std::string& queue, const std::string& registrant, const Slice& tag,
      uint64_t timeout_micros,
      std::function<void(Result<queue::Element>)> done) override {
    api_.DequeueAsync(queue, registrant, tag, timeout_micros, std::move(done));
  }

  /// Provisions `queue` on the daemon (a remote client's only way to
  /// create its private reply queue).
  Status CreateQueue(const std::string& queue,
                     const queue::QueueOptions& options = {}) {
    return api_.CreateQueue(queue, options);
  }
  Result<size_t> Depth(const std::string& queue) { return api_.Depth(queue); }

  TcpChannel* channel() { return &channel_; }

 private:
  TcpChannel channel_;
  ChannelQueueApi api_;
};

}  // namespace rrq::net

#endif  // RRQ_NET_REMOTE_QUEUE_API_H_
