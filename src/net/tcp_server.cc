// TcpServer: one backend-driven I/O loop plus a bounded worker pool.
//
// The kernel mechanics — how readiness/completions are waited for and
// how bytes move — live behind ServerIoBackend (net/io_backend.h):
// epoll_backend.cc is the readiness loop from PR 5, uring_backend.cc
// the io_uring completion loop (DESIGN.md §13). This file keeps the
// protocol and dispatch logic, which is backend-agnostic.
//
// Threading model, kept deliberately narrow:
//   - The loop thread is the only code that accepts, reads sockets,
//     mutates the connection roster, or talks to the backend.
//   - Workers run handlers and write replies. A reply is appended to
//     the connection's outbox under its mutex; a pool worker defers
//     the socket write until it runs out of queued tasks (or hits a
//     cap), so all the replies one drain produced go out corked in one
//     writev — and a batch of pipelined requests costs one reply
//     syscall, not one per request. Elastic threads and backpressured
//     sockets flush as before: on EAGAIN the writer leaves
//     `want_write` set and asks the loop to arm write interest
//     (EPOLLOUT on epoll, a WRITEV SQE on uring).
//   - Connection objects travel by shared_ptr, so a worker finishing a
//     handler after the peer hung up writes to nothing: `closed` is
//     checked under the same mutex that guards the fd.
//
// v1 connections (first frame is kMsgCall/kMsgOneWay) keep the PR 3
// contract — one request at a time, in order — via a per-connection
// backlog chain: a new task runs only when the previous one finished.
// v2 connections dispatch every decoded call straight to the pool, so
// concurrent calls from one socket execute in parallel and their
// commits meet in the WAL's group-commit window.

#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket_util.h"
#include "net/tcp_transport.h"
#include "util/coding.h"
#include "util/logging.h"

namespace rrq::net {

using internal::Errno;
using internal::MakeAddr;
using internal::SetNoDelay;
using internal::SetNonBlocking;

TcpServer::TcpServer(TcpServerOptions options, RpcHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");

  sockaddr_in addr;
  RRQ_RETURN_IF_ERROR(MakeAddr(options_.bind_address, options_.port, &addr));

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // Connection sockets a killed predecessor left in TIME_WAIT must not
  // block rebinding the listener — a restarted daemon reclaims its port.
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("bind " + options_.bind_address + ":" +
                     std::to_string(options_.port));
    close(fd);
    return s;
  }
  if (listen(fd, options_.backlog) != 0) {
    Status s = Errno("listen");
    close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Errno("getsockname");
    close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(fd);

  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status s = Errno("eventfd");
    close(fd);
    return s;
  }
  listen_fd_ = fd;

  std::string note;
  const IoBackendKind resolved = ResolveIoBackend(options_.backend, &note);
  if (!note.empty()) {
    RRQ_LOG(kWarn) << "tcp_server: " << note;
  }
  backend_ = CreateServerIoBackend(resolved, &io_counters_);
  Status started = backend_->Start(listen_fd_, wake_fd_, &sink_);
  if (!started.ok()) {
    close(listen_fd_);
    close(wake_fd_);
    listen_fd_ = wake_fd_ = -1;
    backend_.reset();
    return started;
  }
  backend_name_.store(backend_->name(), std::memory_order_relaxed);

  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 4;
  }
  {
    MutexLock guard(pool_mu_);
    pool_stop_ = false;
  }
  running_.store(true);
  loop_ = std::thread([this] { LoopMain(); });
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  {
    const uint64_t one = 1;
    ssize_t ignored = write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (loop_.joinable()) loop_.join();

  // Drain the pool: queued tasks still run (their replies go to
  // sockets that are still open), then workers exit.
  {
    MutexLock guard(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_.SignalAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::vector<std::thread> elastic;
    {
      MutexLock guard(pool_mu_);
      elastic.swap(blocking_live_);
      blocking_finished_.clear();
    }
    for (auto& t : elastic) {
      if (t.joinable()) t.join();
    }
  }

  // Workers are gone: nobody references the ring or the epoll set any
  // more, so the backend can drop in-flight operations.
  if (backend_) backend_->Shutdown();

  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  {
    MutexLock guard(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& [fd, conn] : conns) {
    MutexLock guard(conn->mu);
    conn->closed = true;
    close(conn->fd);
  }
  active_conns_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = wake_fd_ = -1;
}

std::shared_ptr<TcpServer::Conn> TcpServer::LookupConn(int fd) {
  MutexLock guard(conns_mu_);
  auto it = conns_.find(fd);
  return it == conns_.end() ? nullptr : it->second;
}

void TcpServer::RequestAttention(int fd) {
  {
    MutexLock guard(attention_mu_);
    attention_.push_back(fd);
  }
  const uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void TcpServer::ProcessAttention() {
  std::vector<int> fds;
  {
    MutexLock guard(attention_mu_);
    fds.swap(attention_);
  }
  for (int fd : fds) {
    std::shared_ptr<Conn> conn = LookupConn(fd);
    if (!conn) continue;
    bool failed, want;
    {
      MutexLock guard(conn->mu);
      failed = conn->write_failed;
      want = conn->want_write;
    }
    if (failed) {
      CloseConn(conn, false);
    } else if (want) {
      backend_->SubmitWritev(conn);
    }
  }
}

void TcpServer::LoopMain() {
  while (running_.load(std::memory_order_relaxed)) {
    if (!backend_->Wait().ok()) return;
    if (!running_.load(std::memory_order_relaxed)) return;
    // Everything this cycle decoded goes to the pool in one handoff.
    SubmitBatch();
    ProcessAttention();
  }
}

void TcpServer::SinkImpl::OnAccepted(int fd) {
  SetNonBlocking(fd);
  SetNoDelay(fd);
  auto conn = std::make_shared<ServerConn>();
  conn->fd = fd;
  {
    MutexLock guard(server_->conns_mu_);
    server_->conns_[fd] = conn;
  }
  Status armed = server_->backend_->SubmitRecv(conn);
  if (!armed.ok()) {
    {
      MutexLock guard(server_->conns_mu_);
      server_->conns_.erase(fd);
    }
    close(fd);
    return;
  }
  server_->accepted_.fetch_add(1, std::memory_order_relaxed);
  server_->active_conns_.fetch_add(1, std::memory_order_relaxed);
}

void TcpServer::SinkImpl::OnRecvData(const std::shared_ptr<ServerConn>& conn,
                                     Slice data) {
  conn->reader.Feed(data);
  if (!server_->DrainFrames(conn)) {
    server_->CloseConn(conn, /*protocol_error=*/true);
  }
}

void TcpServer::SinkImpl::OnRecvEof(const std::shared_ptr<ServerConn>& conn) {
  server_->CloseConn(conn, /*protocol_error=*/!conn->reader.AtEnd().ok());
}

void TcpServer::SinkImpl::OnConnError(const std::shared_ptr<ServerConn>& conn) {
  server_->CloseConn(conn, false);  // Reset: the peer is gone.
}

void TcpServer::SinkImpl::OnWake() {}

bool TcpServer::DrainFrames(const std::shared_ptr<Conn>& conn) {
  std::string payload;
  while (true) {
    Status next = conn->reader.Next(&payload);
    if (next.IsNotFound()) return true;
    if (!next.ok() || payload.empty()) return false;
    const unsigned char kind = static_cast<unsigned char>(payload[0]);

    if (conn->version == 0) {
      // The first frame fixes the connection's wire version.
      if (kind == kMsgHello) {
        uint32_t offered = 0;
        if (!ParseHelloBody(Slice(payload.data() + 1, payload.size() - 1),
                            &offered)
                 .ok()) {
          return false;
        }
        const uint32_t common = std::min(kProtocolV2, offered);
        conn->version = common;
        if (common < kProtocolV2) {
          v1_conns_.fetch_add(1, std::memory_order_relaxed);
        }
        std::string hello;
        AppendHelloPayload(&hello, common);
        std::string framed;
        AppendFrame(&framed, hello);
        EnqueueReply(conn, std::move(framed));
        continue;
      }
      if (kind == kMsgCall || kind == kMsgOneWay) {
        conn->version = kProtocolV1;
        v1_conns_.fetch_add(1, std::memory_order_relaxed);
      } else if (kind == kMsgCallV2) {
        conn->version = kProtocolV2;  // hello-less v2 peer: accepted
      } else {
        return false;
      }
    } else if (kind == kMsgHello) {
      return false;  // Hello is only ever the first frame.
    }

    Task task;
    task.kind = kind;
    if (kind == kMsgCallV2) {
      if (conn->version != kProtocolV2) return false;
      Slice p(payload.data() + 1, payload.size() - 1);
      if (!util::GetVarint64(&p, &task.corr_id).ok()) return false;
      task.body.assign(p.data(), p.size());
    } else if (kind == kMsgCall) {
      if (conn->version != kProtocolV1) return false;
      task.body.assign(payload.data() + 1, payload.size() - 1);
    } else if (kind == kMsgOneWay) {
      task.body.assign(payload.data() + 1, payload.size() - 1);
    } else {
      return false;
    }
    Dispatch(conn, std::move(task));
  }
}

void TcpServer::Dispatch(const std::shared_ptr<Conn>& conn, Task task) {
  const bool blocking = hint_ && hint_(Slice(task.body));
  if (conn->version == kProtocolV1) {
    MutexLock guard(conn->mu);
    if (conn->v1_busy) {
      conn->v1_backlog.push_back(std::move(task));
      return;
    }
    conn->v1_busy = true;
  }
  auto shared_task = std::make_shared<Task>(std::move(task));
  if (blocking) {
    // Straight to an elastic thread — a long-poll must not wait behind
    // the rest of this sweep's batch. Its reply flushes immediately.
    SubmitToPool(
        [this, conn, shared_task] {
          RunTask(conn, std::move(*shared_task), /*defer_flush=*/false);
        },
        true);
    return;
  }
  loop_pending_.push_back([this, conn, shared_task] {
    RunTask(conn, std::move(*shared_task), /*defer_flush=*/true);
  });
}

void TcpServer::SubmitBatch() {
  if (loop_pending_.empty()) return;
  {
    MutexLock guard(pool_mu_);
    if (pool_stop_) {
      loop_pending_.clear();
      return;
    }
    for (auto& fn : loop_pending_) pool_queue_.push_back(std::move(fn));
    loop_pending_.clear();
  }
  // One wakeup per batch; workers chain further wakeups while the
  // queue stays non-empty (see WorkerMain), so a deep batch still
  // fans out across the pool without notifying per task.
  pool_cv_.Signal();
}

void TcpServer::RunTask(const std::shared_ptr<Conn>& conn, Task task,
                        bool defer_flush) {
  if (task.kind == kMsgOneWay) {
    std::string ignored;
    handler_(Slice(task.body), &ignored);
    served_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::string reply;
    const Status handled = handler_(Slice(task.body), &reply);
    std::string out;
    if (task.kind == kMsgCallV2) {
      out.push_back(static_cast<char>(kMsgReplyV2));
      util::PutVarint64(&out, task.corr_id);
    }
    EncodeStatus(handled, &out);
    out.append(reply);
    std::string framed;
    AppendFrame(&framed, out);
    // Count before sending: a caller that has its reply in hand must
    // observe the counter already bumped.
    served_.fetch_add(1, std::memory_order_relaxed);
    EnqueueReply(conn, std::move(framed), defer_flush);
  }

  if (conn->version == kProtocolV1) {
    // Release the in-order chain: run the next backlogged request, if
    // any arrived while this one executed.
    Task next;
    bool have = false;
    {
      MutexLock guard(conn->mu);
      if (!conn->v1_backlog.empty()) {
        next = std::move(conn->v1_backlog.front());
        conn->v1_backlog.pop_front();
        have = true;
      } else {
        conn->v1_busy = false;
      }
    }
    if (have) {
      const bool blocking = hint_ && hint_(Slice(next.body));
      auto shared_task = std::make_shared<Task>(std::move(next));
      // Deferred flushing is only safe on pool workers (they flush
      // before sleeping); an elastic thread exits right after the
      // task, so its reply must flush inline.
      const bool defer = !blocking;
      SubmitToPool(
          [this, conn, shared_task, defer] {
            RunTask(conn, std::move(*shared_task), defer);
          },
          blocking);
    }
  }
}

void TcpServer::EnqueueReply(const std::shared_ptr<Conn>& conn,
                             std::string framed, bool defer_flush) {
  {
    MutexLock guard(conn->mu);
    if (conn->closed || conn->write_failed) return;
    conn->outbox.push_back(std::move(framed));
    // If the backend already owns draining this outbox (EPOLLOUT armed
    // or a WRITEV SQE in flight), just queue: the backend flushes
    // everything accumulated — corked in one writev. Otherwise write
    // now, or — on a pool worker — leave the bytes queued for
    // FlushDeferred so the replies this drain produces go out in one
    // writev instead of one syscall each.
    if (conn->want_write) return;
    if (!defer_flush) {
      FlushOutboxLocked(conn.get(), &io_counters_);
      if (conn->want_write || conn->write_failed) RequestAttention(conn->fd);
      return;
    }
  }
  auto& deferred = Deferred();
  for (const auto& c : deferred) {
    if (c == conn) return;
  }
  deferred.push_back(conn);
}

std::vector<std::shared_ptr<TcpServer::Conn>>& TcpServer::Deferred() {
  static thread_local std::vector<std::shared_ptr<Conn>> deferred;
  return deferred;
}

void TcpServer::PublishDeferredLocked() {
  auto& deferred = Deferred();
  for (auto& conn : deferred) {
    bool already = false;
    for (const auto& c : orphan_deferred_) {
      if (c == conn) {
        already = true;
        break;
      }
    }
    if (!already) orphan_deferred_.push_back(std::move(conn));
  }
  deferred.clear();
  // An idle worker's wait predicate covers the orphan list, so this
  // wake is enough for the replies to go out while we run the task.
  pool_cv_.Signal();
}

void TcpServer::FlushDeferred() {
  auto& deferred = Deferred();
  {
    MutexLock guard(pool_mu_);
    for (auto& conn : orphan_deferred_) {
      bool already = false;
      for (const auto& c : deferred) {
        if (c == conn) {
          already = true;
          break;
        }
      }
      if (!already) deferred.push_back(std::move(conn));
    }
    orphan_deferred_.clear();
  }
  for (const auto& conn : deferred) {
    MutexLock guard(conn->mu);
    if (conn->closed || conn->write_failed) continue;
    if (conn->want_write) continue;  // The backend drains the outbox.
    FlushOutboxLocked(conn.get(), &io_counters_);
    if (conn->want_write || conn->write_failed) RequestAttention(conn->fd);
  }
  deferred.clear();
}

void TcpServer::CloseConn(const std::shared_ptr<Conn>& conn,
                          bool protocol_error) {
  {
    MutexLock guard(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    // Count before closing: a peer that has observed the FIN must
    // already see the error reflected in the counter.
    if (protocol_error) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    // Closing the fd removes it from the epoll set; in-flight uring
    // ops are cancelled by Retire below (by user_data, §13).
    close(conn->fd);
  }
  {
    MutexLock guard(conns_mu_);
    conns_.erase(conn->fd);
  }
  backend_->Retire(conn);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void TcpServer::SubmitToPool(std::function<void()> fn, bool blocking) {
  if (blocking) {
    MutexLock guard(pool_mu_);
    if (pool_stop_) return;
    ReapBlockingThreadsLocked();
    if (blocking_threads_ < options_.max_blocking_threads) {
      ++blocking_threads_;
      blocking_live_.emplace_back([this, fn = std::move(fn)] {
        fn();
        // Belt and braces: elastic tasks flush inline, but if one ever
        // deferred, the bytes must not die with this thread.
        FlushDeferred();
        MutexLock guard2(pool_mu_);
        --blocking_threads_;
        blocking_finished_.push_back(std::this_thread::get_id());
      });
      return;
    }
    // Overflow cap hit: fall through to the bounded pool.
  }
  {
    MutexLock guard(pool_mu_);
    if (pool_stop_) return;
    pool_queue_.push_back(std::move(fn));
  }
  pool_cv_.Signal();
}

void TcpServer::ReapBlockingThreadsLocked() {
  for (const auto& id : blocking_finished_) {
    for (auto it = blocking_live_.begin(); it != blocking_live_.end(); ++it) {
      if (it->get_id() == id) {
        it->join();  // The thread already ran its body; this is instant.
        blocking_live_.erase(it);
        break;
      }
    }
  }
  blocking_finished_.clear();
}

void TcpServer::WorkerMain() {
  // Upper bound on connections corked per flush: keeps the deferral
  // window short under a steady firehose while still amortizing the
  // writev.
  constexpr size_t kMaxDeferredConns = 32;
  while (true) {
    std::function<void()> fn;
    {
      MutexLock lock(pool_mu_);
      if (pool_queue_.empty() && !pool_stop_ &&
          (!Deferred().empty() || !orphan_deferred_.empty())) {
        // About to sleep: send corked replies first — a deferred
        // flush may be all that stands between clients and their
        // replies, and nothing else would send it. Covers orphans
        // published by workers that are now parked inside a task.
        lock.Unlock();
        FlushDeferred();
        lock.Lock();
      }
      while (!pool_stop_ && pool_queue_.empty()) {
        pool_cv_.Wait(pool_mu_);
        if (!orphan_deferred_.empty() && pool_queue_.empty() && !pool_stop_) {
          // Woken to flush another worker's published replies.
          lock.Unlock();
          FlushDeferred();
          lock.Lock();
        }
      }
      if (pool_queue_.empty()) {  // pool_stop_ and drained.
        lock.Unlock();
        FlushDeferred();
        return;
      }
      fn = std::move(pool_queue_.front());
      pool_queue_.pop_front();
      // Wake chaining: SubmitBatch notifies once per batch; each
      // worker that takes a task passes the baton while work remains,
      // so deep batches fan out without a notify per task.
      if (!pool_queue_.empty()) pool_cv_.Signal();
      // This task may block indefinitely; replies already corked on
      // this thread must not wait out its runtime (a finished fast
      // call's reply stranded behind a parked slow handler).
      if (!Deferred().empty()) PublishDeferredLocked();
    }
    fn();
    if (Deferred().size() >= kMaxDeferredConns) FlushDeferred();
  }
}

}  // namespace rrq::net
