// TcpServer: one epoll-driven I/O loop plus a bounded worker pool.
//
// Threading model, kept deliberately narrow:
//   - The loop thread is the only code that accepts, reads sockets,
//     mutates the connection roster, or calls epoll_ctl.
//   - Workers run handlers and write replies. A reply is appended to
//     the connection's outbox under its mutex; a pool worker defers
//     the socket write until it runs out of queued tasks (or hits a
//     cap), so all the replies one drain produced go out corked in one
//     writev — and a batch of pipelined requests costs one reply
//     syscall, not one per request. Elastic threads and backpressured
//     sockets flush as before: on EAGAIN the writer leaves
//     `want_write` set and asks the loop to arm EPOLLOUT.
//   - Connection objects travel by shared_ptr, so a worker finishing a
//     handler after the peer hung up writes to nothing: `closed` is
//     checked under the same mutex that guards the fd.
//
// v1 connections (first frame is kMsgCall/kMsgOneWay) keep the PR 3
// contract — one request at a time, in order — via a per-connection
// backlog chain: a new task runs only when the previous one finished.
// v2 connections dispatch every decoded call straight to the pool, so
// concurrent calls from one socket execute in parallel and their
// commits meet in the WAL's group-commit window.

#include <sys/epoll.h>
#include <sys/uio.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket_util.h"
#include "net/tcp_transport.h"
#include "util/coding.h"
#include "util/logging.h"

namespace rrq::net {

using internal::Errno;
using internal::MakeAddr;
using internal::SetNoDelay;
using internal::SetNonBlocking;

struct TcpServer::Task {
  unsigned char kind = 0;  // kMsgCall, kMsgCallV2, or kMsgOneWay
  uint64_t corr_id = 0;    // kMsgCallV2 only
  std::string body;
};

struct TcpServer::Conn {
  int fd = -1;
  // Loop-thread-only state.
  FrameReader reader;
  uint32_t version = 0;  // 0 until the first frame decides the mode

  Mutex mu;
  bool closed GUARDED_BY(mu) = false;
  bool want_write GUARDED_BY(mu) = false;
  bool write_failed GUARDED_BY(mu) = false;
  // Framed replies awaiting the socket.
  std::deque<std::string> outbox GUARDED_BY(mu);
  // Bytes of outbox.front() already sent.
  size_t head_off GUARDED_BY(mu) = 0;
  // v1 in-order execution chain.
  bool v1_busy GUARDED_BY(mu) = false;
  std::deque<Task> v1_backlog GUARDED_BY(mu);
};

TcpServer::TcpServer(TcpServerOptions options, RpcHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");

  sockaddr_in addr;
  RRQ_RETURN_IF_ERROR(MakeAddr(options_.bind_address, options_.port, &addr));

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // Connection sockets a killed predecessor left in TIME_WAIT must not
  // block rebinding the listener — a restarted daemon reclaims its port.
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("bind " + options_.bind_address + ":" +
                     std::to_string(options_.port));
    close(fd);
    return s;
  }
  if (listen(fd, options_.backlog) != 0) {
    Status s = Errno("listen");
    close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Errno("getsockname");
    close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(fd);

  epoll_fd_ = epoll_create1(0);
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status s = Errno(epoll_fd_ < 0 ? "epoll_create1" : "eventfd");
    close(fd);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    return s;
  }
  listen_fd_ = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 4;
  }
  {
    MutexLock guard(pool_mu_);
    pool_stop_ = false;
  }
  running_.store(true);
  loop_ = std::thread([this] { LoopMain(); });
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  {
    const uint64_t one = 1;
    ssize_t ignored = write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (loop_.joinable()) loop_.join();

  // Drain the pool: queued tasks still run (their replies go to
  // sockets that are still open), then workers exit.
  {
    MutexLock guard(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_.SignalAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::vector<std::thread> elastic;
    {
      MutexLock guard(pool_mu_);
      elastic.swap(blocking_live_);
      blocking_finished_.clear();
    }
    for (auto& t : elastic) {
      if (t.joinable()) t.join();
    }
  }

  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  {
    MutexLock guard(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& [fd, conn] : conns) {
    MutexLock guard(conn->mu);
    conn->closed = true;
    close(conn->fd);
  }
  active_conns_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

std::shared_ptr<TcpServer::Conn> TcpServer::LookupConn(int fd) {
  MutexLock guard(conns_mu_);
  auto it = conns_.find(fd);
  return it == conns_.end() ? nullptr : it->second;
}

void TcpServer::RequestAttention(int fd) {
  {
    MutexLock guard(attention_mu_);
    attention_.push_back(fd);
  }
  const uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void TcpServer::ProcessAttention() {
  std::vector<int> fds;
  {
    MutexLock guard(attention_mu_);
    fds.swap(attention_);
  }
  for (int fd : fds) {
    std::shared_ptr<Conn> conn = LookupConn(fd);
    if (!conn) continue;
    bool failed, want;
    {
      MutexLock guard(conn->mu);
      failed = conn->write_failed;
      want = conn->want_write;
    }
    if (failed) {
      CloseConn(conn, false);
    } else if (want) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.fd = conn->fd;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    }
  }
}

void TcpServer::LoopMain() {
  epoll_event events[128];
  while (running_.load(std::memory_order_relaxed)) {
    const int n = epoll_wait(epoll_fd_, events, 128, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t tick;
        while (read(wake_fd_, &tick, sizeof(tick)) > 0) {
        }
        continue;
      }
      if (!running_.load(std::memory_order_relaxed)) return;
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      std::shared_ptr<Conn> conn = LookupConn(fd);
      if (!conn) continue;  // Closed earlier in this batch.
      if (events[i].events & EPOLLERR) {
        CloseConn(conn, false);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      if (LookupConn(fd) != conn) continue;  // HandleWritable closed it.
      if (events[i].events & (EPOLLIN | EPOLLHUP)) HandleReadable(conn);
    }
    ProcessAttention();
  }
}

void TcpServer::HandleAccept() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained (or a transient error; epoll re-fires).
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      MutexLock guard(conns_mu_);
      conns_[fd] = conn;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[65536];
  // Bounded reads per wakeup so one firehose connection cannot pin the
  // loop; level-triggered epoll re-fires for the rest.
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->reader.Feed(Slice(buf, static_cast<size_t>(n)));
      if (!DrainFrames(conn)) {
        CloseConn(conn, /*protocol_error=*/true);
        break;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn, /*protocol_error=*/!conn->reader.AtEnd().ok());
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn, false);  // Reset: the peer is gone.
    break;
  }
  // Everything this sweep decoded goes to the pool in one handoff.
  SubmitBatch();
}

bool TcpServer::DrainFrames(const std::shared_ptr<Conn>& conn) {
  std::string payload;
  while (true) {
    Status next = conn->reader.Next(&payload);
    if (next.IsNotFound()) return true;
    if (!next.ok() || payload.empty()) return false;
    const unsigned char kind = static_cast<unsigned char>(payload[0]);

    if (conn->version == 0) {
      // The first frame fixes the connection's wire version.
      if (kind == kMsgHello) {
        uint32_t offered = 0;
        if (!ParseHelloBody(Slice(payload.data() + 1, payload.size() - 1),
                            &offered)
                 .ok()) {
          return false;
        }
        const uint32_t common = std::min(kProtocolV2, offered);
        conn->version = common;
        if (common < kProtocolV2) {
          v1_conns_.fetch_add(1, std::memory_order_relaxed);
        }
        std::string hello;
        AppendHelloPayload(&hello, common);
        std::string framed;
        AppendFrame(&framed, hello);
        EnqueueReply(conn, std::move(framed));
        continue;
      }
      if (kind == kMsgCall || kind == kMsgOneWay) {
        conn->version = kProtocolV1;
        v1_conns_.fetch_add(1, std::memory_order_relaxed);
      } else if (kind == kMsgCallV2) {
        conn->version = kProtocolV2;  // hello-less v2 peer: accepted
      } else {
        return false;
      }
    } else if (kind == kMsgHello) {
      return false;  // Hello is only ever the first frame.
    }

    Task task;
    task.kind = kind;
    if (kind == kMsgCallV2) {
      if (conn->version != kProtocolV2) return false;
      Slice p(payload.data() + 1, payload.size() - 1);
      if (!util::GetVarint64(&p, &task.corr_id).ok()) return false;
      task.body.assign(p.data(), p.size());
    } else if (kind == kMsgCall) {
      if (conn->version != kProtocolV1) return false;
      task.body.assign(payload.data() + 1, payload.size() - 1);
    } else if (kind == kMsgOneWay) {
      task.body.assign(payload.data() + 1, payload.size() - 1);
    } else {
      return false;
    }
    Dispatch(conn, std::move(task));
  }
}

void TcpServer::Dispatch(const std::shared_ptr<Conn>& conn, Task task) {
  const bool blocking = hint_ && hint_(Slice(task.body));
  if (conn->version == kProtocolV1) {
    MutexLock guard(conn->mu);
    if (conn->v1_busy) {
      conn->v1_backlog.push_back(std::move(task));
      return;
    }
    conn->v1_busy = true;
  }
  auto shared_task = std::make_shared<Task>(std::move(task));
  if (blocking) {
    // Straight to an elastic thread — a long-poll must not wait behind
    // the rest of this sweep's batch. Its reply flushes immediately.
    SubmitToPool(
        [this, conn, shared_task] {
          RunTask(conn, std::move(*shared_task), /*defer_flush=*/false);
        },
        true);
    return;
  }
  loop_pending_.push_back([this, conn, shared_task] {
    RunTask(conn, std::move(*shared_task), /*defer_flush=*/true);
  });
}

void TcpServer::SubmitBatch() {
  if (loop_pending_.empty()) return;
  {
    MutexLock guard(pool_mu_);
    if (pool_stop_) {
      loop_pending_.clear();
      return;
    }
    for (auto& fn : loop_pending_) pool_queue_.push_back(std::move(fn));
    loop_pending_.clear();
  }
  // One wakeup per batch; workers chain further wakeups while the
  // queue stays non-empty (see WorkerMain), so a deep batch still
  // fans out across the pool without notifying per task.
  pool_cv_.Signal();
}

void TcpServer::RunTask(const std::shared_ptr<Conn>& conn, Task task,
                        bool defer_flush) {
  if (task.kind == kMsgOneWay) {
    std::string ignored;
    handler_(Slice(task.body), &ignored);
    served_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::string reply;
    const Status handled = handler_(Slice(task.body), &reply);
    std::string out;
    if (task.kind == kMsgCallV2) {
      out.push_back(static_cast<char>(kMsgReplyV2));
      util::PutVarint64(&out, task.corr_id);
    }
    EncodeStatus(handled, &out);
    out.append(reply);
    std::string framed;
    AppendFrame(&framed, out);
    // Count before sending: a caller that has its reply in hand must
    // observe the counter already bumped.
    served_.fetch_add(1, std::memory_order_relaxed);
    EnqueueReply(conn, std::move(framed), defer_flush);
  }

  if (conn->version == kProtocolV1) {
    // Release the in-order chain: run the next backlogged request, if
    // any arrived while this one executed.
    Task next;
    bool have = false;
    {
      MutexLock guard(conn->mu);
      if (!conn->v1_backlog.empty()) {
        next = std::move(conn->v1_backlog.front());
        conn->v1_backlog.pop_front();
        have = true;
      } else {
        conn->v1_busy = false;
      }
    }
    if (have) {
      const bool blocking = hint_ && hint_(Slice(next.body));
      auto shared_task = std::make_shared<Task>(std::move(next));
      // Deferred flushing is only safe on pool workers (they flush
      // before sleeping); an elastic thread exits right after the
      // task, so its reply must flush inline.
      const bool defer = !blocking;
      SubmitToPool(
          [this, conn, shared_task, defer] {
            RunTask(conn, std::move(*shared_task), defer);
          },
          blocking);
    }
  }
}

void TcpServer::FlushLocked(Conn* conn) REQUIRES(conn->mu) {
  while (!conn->outbox.empty()) {
    iovec iov[64];
    int cnt = 0;
    for (const auto& b : conn->outbox) {
      const size_t off = (cnt == 0) ? conn->head_off : 0;
      iov[cnt].iov_base = const_cast<char*>(b.data()) + off;
      iov[cnt].iov_len = b.size() - off;
      if (++cnt == 64) break;
    }
    const ssize_t n = writev(conn->fd, iov, cnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn->want_write = true;
        return;
      }
      conn->write_failed = true;  // Peer gone; the loop reaps us.
      return;
    }
    size_t left = static_cast<size_t>(n);
    while (left > 0) {
      const size_t avail = conn->outbox.front().size() - conn->head_off;
      if (left >= avail) {
        left -= avail;
        conn->outbox.pop_front();
        conn->head_off = 0;
      } else {
        conn->head_off += left;
        left = 0;
      }
    }
  }
}

void TcpServer::EnqueueReply(const std::shared_ptr<Conn>& conn,
                             std::string framed, bool defer_flush) {
  {
    MutexLock guard(conn->mu);
    if (conn->closed || conn->write_failed) return;
    conn->outbox.push_back(std::move(framed));
    // If the loop is already watching for writability, just queue: the
    // next EPOLLOUT flushes everything accumulated — corked in one
    // writev. Otherwise write now, or — on a pool worker — leave the
    // bytes queued for FlushDeferred so the replies this drain
    // produces go out in one writev instead of one syscall each.
    if (conn->want_write) return;
    if (!defer_flush) {
      FlushLocked(conn.get());
      if (conn->want_write || conn->write_failed) RequestAttention(conn->fd);
      return;
    }
  }
  auto& deferred = Deferred();
  for (const auto& c : deferred) {
    if (c == conn) return;
  }
  deferred.push_back(conn);
}

std::vector<std::shared_ptr<TcpServer::Conn>>& TcpServer::Deferred() {
  static thread_local std::vector<std::shared_ptr<Conn>> deferred;
  return deferred;
}

void TcpServer::FlushDeferred() {
  auto& deferred = Deferred();
  for (const auto& conn : deferred) {
    MutexLock guard(conn->mu);
    if (conn->closed || conn->write_failed) continue;
    if (conn->want_write) continue;  // EPOLLOUT will flush the outbox.
    FlushLocked(conn.get());
    if (conn->want_write || conn->write_failed) RequestAttention(conn->fd);
  }
  deferred.clear();
}

void TcpServer::HandleWritable(const std::shared_ptr<Conn>& conn) {
  bool failed;
  bool drained;
  {
    MutexLock guard(conn->mu);
    if (conn->closed) return;
    conn->want_write = false;
    FlushLocked(conn.get());
    failed = conn->write_failed;
    drained = !conn->want_write;
  }
  if (failed) {
    CloseConn(conn, false);
    return;
  }
  if (drained) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void TcpServer::CloseConn(const std::shared_ptr<Conn>& conn,
                          bool protocol_error) {
  {
    MutexLock guard(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    // Count before closing: a peer that has observed the FIN must
    // already see the error reflected in the counter.
    if (protocol_error) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    // closing the fd removes it from the epoll set.
    close(conn->fd);
  }
  {
    MutexLock guard(conns_mu_);
    conns_.erase(conn->fd);
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void TcpServer::SubmitToPool(std::function<void()> fn, bool blocking) {
  if (blocking) {
    MutexLock guard(pool_mu_);
    if (pool_stop_) return;
    ReapBlockingThreadsLocked();
    if (blocking_threads_ < options_.max_blocking_threads) {
      ++blocking_threads_;
      blocking_live_.emplace_back([this, fn = std::move(fn)] {
        fn();
        // Belt and braces: elastic tasks flush inline, but if one ever
        // deferred, the bytes must not die with this thread.
        FlushDeferred();
        MutexLock guard2(pool_mu_);
        --blocking_threads_;
        blocking_finished_.push_back(std::this_thread::get_id());
      });
      return;
    }
    // Overflow cap hit: fall through to the bounded pool.
  }
  {
    MutexLock guard(pool_mu_);
    if (pool_stop_) return;
    pool_queue_.push_back(std::move(fn));
  }
  pool_cv_.Signal();
}

void TcpServer::ReapBlockingThreadsLocked() {
  for (const auto& id : blocking_finished_) {
    for (auto it = blocking_live_.begin(); it != blocking_live_.end(); ++it) {
      if (it->get_id() == id) {
        it->join();  // The thread already ran its body; this is instant.
        blocking_live_.erase(it);
        break;
      }
    }
  }
  blocking_finished_.clear();
}

void TcpServer::WorkerMain() {
  // Upper bound on connections corked per flush: keeps the deferral
  // window short under a steady firehose while still amortizing the
  // writev.
  constexpr size_t kMaxDeferredConns = 32;
  while (true) {
    std::function<void()> fn;
    {
      MutexLock lock(pool_mu_);
      if (pool_queue_.empty() && !pool_stop_) {
        // About to sleep: send corked replies first — a deferred
        // flush may be all that stands between clients and their
        // replies, and nothing else would send it.
        lock.Unlock();
        FlushDeferred();
        lock.Lock();
        while (!pool_stop_ && pool_queue_.empty()) pool_cv_.Wait(pool_mu_);
      }
      if (pool_queue_.empty()) {  // pool_stop_ and drained.
        lock.Unlock();
        FlushDeferred();
        return;
      }
      fn = std::move(pool_queue_.front());
      pool_queue_.pop_front();
      // Wake chaining: SubmitBatch notifies once per batch; each
      // worker that takes a task passes the baton while work remains,
      // so deep batches fan out without a notify per task.
      if (!pool_queue_.empty()) pool_cv_.Signal();
    }
    fn();
    if (Deferred().size() >= kMaxDeferredConns) FlushDeferred();
  }
}

}  // namespace rrq::net
