#ifndef RRQ_NET_TRANSPORT_H_
#define RRQ_NET_TRANSPORT_H_

#include <functional>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace rrq::net {

/// Server-side request handler — the same shape as the simulated
/// comm::Network::Handler, so one service implementation (the queue
/// service dispatcher) serves both transports.
using RpcHandler =
    std::function<Status(const Slice& request, std::string* reply)>;

/// Per-call knobs a caller can attach to Call/CallAsync.
struct CallOptions {
  /// Raises this call's deadline to at least this many microseconds
  /// from now (0 = use the channel's default). Callers issuing an op
  /// the *server* is allowed to park on — a Dequeue carrying a wait
  /// timeout — must set this to the server-side bound plus a transit
  /// margin, or the transport can expire the call while the server is
  /// still legitimately working on it (and a destructive op may then
  /// commit server-side with its reply discarded as a straggler).
  /// Never *lowers* the deadline below the channel default.
  uint64_t min_deadline_micros = 0;
};

/// Client side of one logical connection to a service. Two
/// implementations: TcpChannel (a real socket) and the simulated
/// network's channel inside comm::RemoteQueueApi — tests and
/// deployments swap them under the same clerk code.
///
/// The failure contract is the paper's §2 uncertainty, on both
/// transports: when Call fails with Unavailable, the request MAY have
/// executed at the server (the reply was lost, the connection died
/// mid-exchange, ...). Implementations therefore never resend a
/// request whose bytes may already have reached the server — the
/// caller resolves the in-doubt outcome through reconnection and
/// persistent registration, never blind retry.
class Channel {
 public:
  /// Completion of an asynchronous Call: the handler's status plus the
  /// reply bytes (empty unless the status is OK). Invoked exactly once,
  /// possibly on an internal transport thread — callbacks must not
  /// block for long and must not destroy the channel.
  using Callback = std::function<void(Status, std::string reply)>;

  virtual ~Channel() = default;

  /// At-most-once RPC: delivers `request`, returns the handler's
  /// status, and fills `*reply` with the handler's reply bytes on OK.
  /// Unavailable on any connectivity failure.
  virtual Status Call(const Slice& request, std::string* reply) = 0;

  /// Call with per-call options. The base implementation ignores the
  /// options (a transport without deadlines has nothing to stretch);
  /// deadline-enforcing transports override this.
  virtual Status Call(const Slice& request, std::string* reply,
                      const CallOptions& options) {
    (void)options;
    return Call(request, reply);
  }

  /// Asynchronous Call. The base implementation degrades to the
  /// synchronous Call and invokes `done` inline, so every channel is
  /// pipelinable in interface even when the transport underneath is
  /// serialized; TcpChannel overrides this with true wire multiplexing.
  virtual void CallAsync(const Slice& request, Callback done) {
    std::string reply;
    Status s = Call(request, &reply);
    done(std::move(s), std::move(reply));
  }

  /// CallAsync with per-call options; base ignores them, like Call.
  virtual void CallAsync(const Slice& request, const CallOptions& options,
                         Callback done) {
    (void)options;
    CallAsync(request, std::move(done));
  }

  /// Fire-and-forget message (§5's one-way Send): no acknowledgement,
  /// no failure signal — a lost message surfaces later as a Receive
  /// timeout, by design.
  virtual Status SendOneWay(const Slice& message) = 0;
};

}  // namespace rrq::net

#endif  // RRQ_NET_TRANSPORT_H_
