#include "net/tcp_transport.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "net/socket_util.h"
#include "net/uring_backend.h"
#include "util/coding.h"
#include "util/logging.h"

namespace rrq::net {

using internal::Errno;
using internal::MakeAddr;
using internal::NowMicros;
using internal::PollFd;
using internal::SetNoDelay;

namespace {

Status SendAll(int fd, const Slice& data, IoCounters* counters) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (counters) counters->sends.fetch_add(1, std::memory_order_relaxed);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable("send failed: " +
                                 std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

void DrainEventFd(int fd) {
  uint64_t tick;
  while (read(fd, &tick, sizeof(tick)) > 0) {
  }
}

void KickEventFd(int fd) {
  const uint64_t one = 1;
  ssize_t ignored = write(fd, &one, sizeof(one));
  (void)ignored;
}

// Absolute deadline for a call: now + max(channel default, the
// caller's minimum). Saturating — a caller asking for an effectively
// unbounded wait gets UINT64_MAX, which the reader treats as "no
// deadline" (it can never be <= now).
uint64_t CallDeadline(uint64_t now, uint64_t default_micros,
                      uint64_t min_deadline_micros) {
  const uint64_t budget = std::max(default_micros, min_deadline_micros);
  return budget > UINT64_MAX - now ? UINT64_MAX : now + budget;
}

}  // namespace

// The socket plus the eventfd that wakes its demux reader. Shared by
// every thread touching the connection; the fds close when the last
// holder lets go, so a send racing a teardown can never hit a reused
// fd number.
struct TcpChannel::Sock {
  int fd = -1;
  int wake_fd = -1;
  std::atomic<bool> broken{false};
  FrameReader v1_reader;  // v1 mode only; guarded by the channel's write_mu_

  // v2 combining writer (SendV2): frames append to `outbuf` under
  // `out_mu`; whichever thread finds no writer active becomes one and
  // drains until the buffer stays empty. Concurrent callers cork their
  // frames into the active writer's next send instead of queueing on a
  // lock for a syscall apiece.
  Mutex out_mu;
  std::string outbuf GUARDED_BY(out_mu);
  bool writer_active GUARDED_BY(out_mu) = false;

  // When the demux reader runs on io_uring it owns every SQE, so
  // senders never write the socket themselves: SendV2 parks the writer
  // role (`ring_handoff`) and kicks the wake eventfd, and the reader
  // turns the accumulated outbuf into one SEND SQE on its next enter —
  // a pipelined burst's sends and its reply reaping share a syscall.
  bool ring_mode GUARDED_BY(out_mu) = false;
  bool ring_handoff GUARDED_BY(out_mu) = false;

  ~Sock() {
    if (fd >= 0) close(fd);
    if (wake_fd >= 0) close(wake_fd);
  }
};

TcpChannel::TcpChannel(TcpChannelOptions options)
    : options_(std::move(options)) {}

TcpChannel::~TcpChannel() { Close(); }

void TcpChannel::Close() {
  MutexLock lock(mu_);
  // Loop: a caller racing us through EnsureConnectedLocked() can join
  // the reader we are waiting out and stand up a fresh connection while
  // Wait() has mu_ released. Re-checking sock_ every wakeup means any
  // such connection is torn down too, instead of us blocking forever on
  // a healthy reader that will never exit (a real deadlock ASan runs
  // hit in clerk_pool_exactly_once_test).
  for (;;) {
    std::shared_ptr<Sock> sock = sock_;
    if (sock) {
      if (wire_version_ >= kProtocolV2) {
        // The reader owns teardown: it fails every pending call, clears
        // sock_, and announces its exit.
        sock->broken.store(true, std::memory_order_release);
        shutdown(sock->fd, SHUT_RDWR);
        KickEventFd(sock->wake_fd);
      } else {
        sock_.reset();
        // Unblock a concurrent v1 exchange parked in recv().
        shutdown(sock->fd, SHUT_RDWR);
      }
    }
    if (!reader_.joinable()) return;
    if (reader_done_) {
      // The reader no longer touches channel state; joining under mu_
      // cannot deadlock.
      reader_.join();
      continue;  // re-check: a racing reconnect may have run meanwhile
    }
    reader_exit_cv_.Wait(mu_);
  }
}

void TcpChannel::SetTarget(const std::string& host, uint16_t port) {
  {
    MutexLock lock(mu_);
    options_.host = host;
    options_.port = port;
    // The new server may speak a different protocol version.
    server_version_hint_ = 0;
  }
  Close();
}

Status TcpChannel::ConnectOnce(int* fd_out) {
  sockaddr_in addr;
  RRQ_RETURN_IF_ERROR(MakeAddr(options_.host, options_.port, &addr));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  // Non-blocking connect so the attempt honors the connect deadline.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const uint64_t deadline = NowMicros() + options_.connect_timeout_micros;
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    Status ready = PollFd(fd, POLLOUT, deadline);
    if (!ready.ok()) {
      close(fd);
      return ready.IsTimedOut() ? Status::TimedOut("connect timed out")
                                : ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close(fd);
      return Status::IOError("connect: " + std::string(std::strerror(err)));
    }
  } else if (rc != 0) {
    Status s = Errno("connect");
    close(fd);
    return s;
  }
  fcntl(fd, F_SETFL, flags);
  SetNoDelay(fd);
  *fd_out = fd;
  return Status::OK();
}

Status TcpChannel::NegotiateV2(int fd, uint32_t* version) {
  std::string framed;
  {
    std::string payload;
    AppendHelloPayload(&payload, options_.max_protocol_version);
    AppendFrame(&framed, payload);
  }
  RRQ_RETURN_IF_ERROR(SendAll(fd, framed, &io_counters_));

  FrameReader reader;
  char buf[4096];
  const uint64_t deadline = NowMicros() + options_.connect_timeout_micros;
  while (true) {
    std::string payload;
    Status next = reader.Next(&payload);
    if (next.ok()) {
      if (payload.empty() ||
          static_cast<unsigned char>(payload[0]) != kMsgHello) {
        return Status::Corruption("expected hello reply");
      }
      uint32_t server_version = 0;
      RRQ_RETURN_IF_ERROR(ParseHelloBody(
          Slice(payload.data() + 1, payload.size() - 1), &server_version));
      if (reader.buffered() != 0) {
        // The server must not speak before our first call.
        return Status::Corruption("unexpected bytes after hello");
      }
      *version = std::min(options_.max_protocol_version, server_version);
      return Status::OK();
    }
    if (!next.IsNotFound()) return next;  // Corruption.
    Status ready = PollFd(fd, POLLIN, deadline);
    if (!ready.ok()) {
      return ready.IsTimedOut() ? Status::TimedOut("hello timed out") : ready;
    }
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0 || (n < 0 && errno == ECONNRESET)) {
      // A v1 server drops the connection on the unknown hello kind.
      // Nothing but the hello was sent, so reconnecting as v1 resends
      // no request — the §2 rule holds.
      return Status::FailedPrecondition("server closed on hello");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    reader.Feed(Slice(buf, static_cast<size_t>(n)));
  }
}

Status TcpChannel::EnsureConnectedLocked() {
  // Re-check sock_ on every wakeup: when a dead connection strands
  // several callers here, the first one to see reader_done_ joins the
  // old reader, reconnects, and resets reader_done_ for the NEW reader.
  // A waiter that only re-tested reader_done_ would then sleep until
  // the healthy new connection failed — i.e. forever (deadlock observed
  // in clerk_pool_exactly_once_test under sanitizer load). Seeing sock_
  // set means that caller finished the job for us.
  for (;;) {
    if (sock_) return Status::OK();
    if (!reader_.joinable() || reader_done_) break;
    // A previous connection's reader may still be failing its pending
    // calls; wait for it to finish with channel state before rebuilding.
    reader_exit_cv_.Wait(mu_);
  }
  if (reader_.joinable()) reader_.join();

  // Reconnect-with-backoff, bounded. This is the only retry loop in
  // the transport, and it runs strictly before any request bytes are
  // sent — so it can never duplicate a request.
  uint64_t backoff = options_.backoff_initial_micros;
  Status last = Status::Unavailable("no connect attempts made");
  for (int attempt = 0; attempt < options_.max_connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff = std::min(backoff * 2, options_.backoff_max_micros);
    }
    int fd = -1;
    last = ConnectOnce(&fd);
    if (last.IsInvalidArgument()) return last;  // Bad address: hopeless.
    if (!last.ok()) continue;

    uint32_t version = kProtocolV1;
    if (options_.max_protocol_version >= kProtocolV2 &&
        server_version_hint_ != kProtocolV1) {
      last = NegotiateV2(fd, &version);
      if (last.IsFailedPrecondition()) {
        // v1 server: remember, reconnect, speak the old protocol.
        close(fd);
        server_version_hint_ = kProtocolV1;
        last = ConnectOnce(&fd);
        if (!last.ok()) continue;
        version = kProtocolV1;
      } else if (!last.ok()) {
        close(fd);
        continue;
      }
    }

    auto sock = std::make_shared<Sock>();
    sock->fd = fd;
    if (version >= kProtocolV2) {
      sock->wake_fd = eventfd(0, EFD_NONBLOCK);
      if (sock->wake_fd < 0) {
        last = Errno("eventfd");
        continue;  // sock closes fd on destruction.
      }
    }
    sock_ = sock;
    wire_version_ = version;
    version_.store(version, std::memory_order_relaxed);
    connects_.fetch_add(1, std::memory_order_relaxed);
    if (version < kProtocolV2) {
      io_backend_.store("v1", std::memory_order_relaxed);
    }
    if (version >= kProtocolV2) {
      reader_done_ = false;
      reader_wait_until_ = UINT64_MAX;
      reader_ = std::thread([this, sock] { ReaderMain(sock); });
    }
    return Status::OK();
  }
  return Status::Unavailable("connect to " + options_.host + ":" +
                             std::to_string(options_.port) + " failed: " +
                             last.ToString());
}

void TcpChannel::BreakConnectionForTest() {
  std::shared_ptr<Sock> sock;
  {
    MutexLock lock(mu_);
    sock = sock_;
    if (sock && wire_version_ < kProtocolV2) {
      // v1 has no reader to run teardown; drop the socket directly.
      sock_.reset();
    }
  }
  if (sock == nullptr) return;
  if (sock->wake_fd >= 0) {
    BreakConnection(sock);
  } else {
    shutdown(sock->fd, SHUT_RDWR);
  }
}

void TcpChannel::BreakConnection(const std::shared_ptr<Sock>& sock) {
  sock->broken.store(true, std::memory_order_release);
  shutdown(sock->fd, SHUT_RDWR);
  if (sock->wake_fd >= 0) KickEventFd(sock->wake_fd);
}

void TcpChannel::ReaderMain(std::shared_ptr<Sock> sock) {
  FrameReader reader;

  // Resolve the reader-loop mechanics for this connection. A forced or
  // preferred uring that cannot be set up degrades to the poll loop
  // with a logged reason — a connection always comes up (§13).
  std::unique_ptr<ClientUringIo> uring;
  {
    std::string note;
    const IoBackendKind resolved = ResolveIoBackend(options_.backend, &note);
    if (resolved == IoBackendKind::kUring) {
      std::string reason;
      uring =
          ClientUringIo::Create(sock->fd, sock->wake_fd, &io_counters_, &reason);
      if (!uring) {
        RRQ_LOG(kWarn) << "tcp_channel: io_uring reader setup failed ("
                       << reason << "); using poll";
      }
    } else if (!note.empty()) {
      RRQ_LOG(kWarn) << "tcp_channel: " << note;
    }
  }
  io_backend_.store(uring ? "uring" : "poll", std::memory_order_relaxed);
  if (uring) {
    // From here on senders park their bytes for the ring instead of
    // writing the socket (SendV2 handoff). Sends issued before this
    // flips went out directly under the writer_active claim, which the
    // handoff honors — the two regimes never write concurrently.
    MutexLock guard(sock->out_mu);
    sock->ring_mode = true;
  }

  // set => tear the connection down
  Status fail = uring ? ReaderLoopUring(sock, &reader, uring.get())
                      : ReaderLoopPoll(sock, &reader);

  // Teardown: fail every pending call, release the connection, and
  // only then announce the exit (a reconnect must not race us).
  std::vector<Callback> victims;
  {
    MutexLock guard(mu_);
    for (auto& [id, pc] : pending_) victims.push_back(std::move(pc.done));
    pending_.clear();
    if (sock_ == sock) sock_.reset();
  }
  shutdown(sock->fd, SHUT_RDWR);  // Unblock writers still holding sock.
  for (auto& done : victims) done(fail, std::string());
  {
    MutexLock guard(mu_);
    reader_done_ = true;
  }
  reader_exit_cv_.SignalAll();
}

uint64_t TcpChannel::SweepDeadlines() {
  // Expire per-call deadlines. The call fails; the connection does
  // not — its straggler reply, if any, is discarded by id later.
  const uint64_t now = NowMicros();
  std::vector<Callback> expired;
  uint64_t min_deadline = UINT64_MAX;
  {
    MutexLock guard(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.deadline_micros <= now) {
        expired.push_back(std::move(it->second.done));
        it = pending_.erase(it);
      } else {
        min_deadline = std::min(min_deadline, it->second.deadline_micros);
        ++it;
      }
    }
    // A new call with an earlier deadline than this kicks the wake fd.
    reader_wait_until_ = min_deadline;
  }
  for (auto& done : expired) {
    deadline_expiries_.fetch_add(1, std::memory_order_relaxed);
    done(Status::Unavailable(kCallDeadlineExceededMessage), std::string());
  }
  return min_deadline;
}

Status TcpChannel::DispatchReplies(FrameReader* reader) {
  std::string payload;
  while (true) {
    Status next = reader->Next(&payload);
    if (next.IsNotFound()) return Status::OK();
    if (!next.ok()) {
      return Status::Unavailable("protocol corruption: " + next.ToString());
    }
    Slice p(payload);
    uint64_t id = 0;
    if (p.empty() || static_cast<unsigned char>(p[0]) != kMsgReplyV2) {
      return Status::Unavailable("protocol corruption: bad reply kind");
    }
    p.remove_prefix(1);
    if (!util::GetVarint64(&p, &id).ok()) {
      return Status::Unavailable("protocol corruption: bad correlation id");
    }
    // A malformed status encoding is delivered to the one matching
    // call as Corruption; the stream itself is still well framed.
    Status handled = DecodeStatus(&p);
    Callback done;
    {
      MutexLock guard(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        done = std::move(it->second.done);
        pending_.erase(it);
      }
    }
    if (!done) {
      // Straggler from an expired deadline (or an id the server made
      // up): discard. Never resent, never re-matched — §2 holds.
      late_replies_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (handled.ok()) {
      done(Status::OK(), std::string(p.data(), p.size()));
    } else {
      done(std::move(handled), std::string());
    }
  }
}

Status TcpChannel::ReaderLoopPoll(const std::shared_ptr<Sock>& sock,
                                  FrameReader* reader) {
  char buf[65536];
  while (true) {
    if (sock->broken.load(std::memory_order_acquire)) {
      return Status::Unavailable("connection closed");
    }
    const uint64_t min_deadline = SweepDeadlines();

    // Fast path: on a busy pipelined connection the next replies are
    // usually already buffered, so try the read before paying for a
    // poll syscall.
    const ssize_t r = recv(sock->fd, buf, sizeof(buf), MSG_DONTWAIT);
    io_counters_.recvs.fetch_add(1, std::memory_order_relaxed);
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nothing buffered. Sleep until the socket is readable, a new
      // earlier deadline is registered (wake_fd), or the earliest
      // pending deadline passes — then loop back to the checks above.
      int timeout_ms = -1;
      if (min_deadline != UINT64_MAX) {
        const uint64_t now = NowMicros();
        timeout_ms = min_deadline <= now
                         ? 0
                         : static_cast<int>(std::min<uint64_t>(
                               (min_deadline - now + 999) / 1000, 60'000));
      }
      pollfd pfds[2] = {{sock->fd, POLLIN, 0}, {sock->wake_fd, POLLIN, 0}};
      io_counters_.waits.fetch_add(1, std::memory_order_relaxed);
      const int n = poll(pfds, 2, timeout_ms);
      if (n < 0 && errno != EINTR) {
        return Status::Unavailable("poll failed: " +
                                   std::string(std::strerror(errno)));
      }
      if (n > 0 && pfds[1].revents != 0) {
        DrainEventFd(sock->wake_fd);
        io_counters_.recvs.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (r == 0) {
      // EOF with calls possibly executed server-side: the §2
      // uncertainty, surfaced as Unavailable to every pending call.
      return Status::Unavailable(reader->AtEnd().ok()
                                     ? "connection closed by server"
                                     : "connection torn mid-reply");
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    reader->Feed(Slice(buf, static_cast<size_t>(r)));

    // Claim the writer role for the duration of this reply burst:
    // calls issued by the callbacks below (a pipelined clerk's next
    // op, typically) accumulate in the outbuf and go to the socket in
    // one send after the burst instead of one syscall per callback.
    const bool corked = CorkOutbuf(sock);
    Status st = DispatchReplies(reader);
    if (corked) {
      // Send whatever the burst's callbacks queued, in one syscall.
      Status drained = DrainOutbuf(sock);
      if (st.ok() && !drained.ok()) {
        st = Status::Unavailable("send failed: " + drained.ToString());
      }
    }
    if (!st.ok()) return st;
  }
}

Status TcpChannel::ReaderLoopUring(const std::shared_ptr<Sock>& sock,
                                   FrameReader* reader, ClientUringIo* io) {
  while (true) {
    if (sock->broken.load(std::memory_order_acquire)) {
      return Status::Unavailable("connection closed");
    }
    const uint64_t min_deadline = SweepDeadlines();
    uint64_t timeout = UINT64_MAX;
    if (min_deadline != UINT64_MAX) {
      const uint64_t now = NowMicros();
      timeout = min_deadline <= now
                    ? 0
                    : std::min<uint64_t>(min_deadline - now, 60'000'000);
    }

    // One enter covers the whole cycle: it submits the recv re-arm and
    // any queued send bytes, then waits for completions — where the
    // poll loop pays recv + poll + send for the same burst. A finite
    // sweep deadline means calls are pending, so the wait may run past
    // a fresh send's inline completion to the replies it provokes.
    bool fed = false;
    ClientUringIo::Events ev;
    io->Wait(
        timeout, /*expect_reply=*/min_deadline != UINT64_MAX,
        [&](Slice chunk) {
          reader->Feed(chunk);
          fed = true;
        },
        &ev);
    // A sender that found no writer active parked the role for us
    // (SendV2 handoff); a completed ring send leaves us holding it.
    // Either way the role is legitimately ours, so FinishRingSend may
    // queue the outbuf or retire the role.
    bool handoff = false;
    {
      MutexLock guard(sock->out_mu);
      handoff = sock->ring_handoff;
      sock->ring_handoff = false;
    }
    if (handoff || ev.send_done) FinishRingSend(sock, io);
    Status st;
    if (fed) {
      // Same corking contract as the poll loop, except the drain rides
      // the ring: callbacks' calls accumulate in the outbuf and go out
      // as one SEND SQE on the next enter.
      const bool corked = CorkOutbuf(sock);
      st = DispatchReplies(reader);
      if (corked) FinishRingSend(sock, io);
    }
    if (!st.ok()) return st;
    if (!ev.error.ok()) return ev.error;
    if (ev.eof) {
      return Status::Unavailable(reader->AtEnd().ok()
                                     ? "connection closed by server"
                                     : "connection torn mid-reply");
    }
  }
}

void TcpChannel::FinishRingSend(const std::shared_ptr<Sock>& sock,
                                ClientUringIo* io) {
  if (io->send_inflight()) return;
  std::string local;
  {
    MutexLock guard(sock->out_mu);
    if (sock->outbuf.empty()) {
      sock->writer_active = false;
      return;
    }
    local.swap(sock->outbuf);
    // The writer role stays claimed until the queued bytes complete
    // (Events::send_done), so concurrent senders keep corking into the
    // outbuf instead of writing the socket themselves.
  }
  io->QueueSend(std::move(local));
}

Status TcpChannel::CallV1(const std::shared_ptr<Sock>& sock,
                          const Slice& request, std::string* reply,
                          uint64_t min_deadline_micros) {
  MutexLock wguard(write_mu_);
  std::string framed;
  {
    std::string payload;
    payload.push_back(static_cast<char>(kMsgCall));
    payload.append(request.data(), request.size());
    AppendFrame(&framed, payload);
  }
  Status s = SendAll(sock->fd, framed, &io_counters_);
  if (!s.ok()) {
    TearDownV1(sock);
    return s;
  }

  const uint64_t deadline = CallDeadline(
      NowMicros(), options_.call_timeout_micros, min_deadline_micros);
  char buf[16384];
  std::string wire;
  while (true) {
    Status next = sock->v1_reader.Next(&wire);
    if (next.ok()) break;
    if (next.IsCorruption()) {
      TearDownV1(sock);
      return Status::Unavailable("protocol corruption: " + next.ToString());
    }
    Status ready = PollFd(sock->fd, POLLIN, deadline);
    if (!ready.ok()) {
      // A straggler reply may still arrive on this stream and v1
      // replies carry no ids, so the connection cannot be reused.
      TearDownV1(sock);
      return Status::Unavailable(
          ready.IsTimedOut() ? std::string(kCallDeadlineExceededMessage)
                             : "poll failed: " + ready.ToString());
    }
    const ssize_t n = recv(sock->fd, buf, sizeof(buf), 0);
    io_counters_.recvs.fetch_add(1, std::memory_order_relaxed);
    if (n == 0) {
      Status torn = sock->v1_reader.AtEnd();
      TearDownV1(sock);
      return Status::Unavailable(torn.ok() ? "connection closed before reply"
                                           : "connection torn mid-reply: " +
                                                 torn.ToString());
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      TearDownV1(sock);
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    sock->v1_reader.Feed(Slice(buf, static_cast<size_t>(n)));
  }
  // [handler status][reply bytes], exactly like the simulated network
  // propagating a handler's return value.
  Slice input(wire);
  Status handled = DecodeStatus(&input);
  if (!handled.ok()) return handled;
  reply->assign(input.data(), input.size());
  return Status::OK();
}

void TcpChannel::TearDownV1(const std::shared_ptr<Sock>& sock) {
  shutdown(sock->fd, SHUT_RDWR);
  MutexLock guard(mu_);
  if (sock_ == sock) sock_.reset();
}

void TcpChannel::CallAsync(const Slice& request, Callback done) {
  CallAsync(request, CallOptions{}, std::move(done));
}

void TcpChannel::CallAsync(const Slice& request, const CallOptions& options,
                           Callback done) {
  std::shared_ptr<Sock> sock;
  uint32_t version = 0;
  uint64_t id = 0;
  bool wake = false;
  {
    MutexLock lock(mu_);
    Status s = EnsureConnectedLocked();
    if (!s.ok()) {
      lock.Unlock();
      done(std::move(s), std::string());
      return;
    }
    sock = sock_;
    version = wire_version_;
    if (version >= kProtocolV2) {
      id = next_id_++;
      const uint64_t deadline =
          CallDeadline(NowMicros(), options_.call_timeout_micros,
                       options.min_deadline_micros);
      pending_.emplace(id, PendingCall{std::move(done), deadline});
      wake = deadline < reader_wait_until_;
    }
  }

  if (version < kProtocolV2) {
    std::string reply;
    Status s = CallV1(sock, request, &reply, options.min_deadline_micros);
    done(std::move(s), std::move(reply));
    return;
  }

  std::string framed;
  {
    std::string payload;
    payload.push_back(static_cast<char>(kMsgCallV2));
    util::PutVarint64(&payload, id);
    payload.append(request.data(), request.size());
    AppendFrame(&framed, payload);
  }
  Status sent = SendV2(sock, std::move(framed));
  if (!sent.ok()) {
    // A partial send breaks the stream for everyone; the reader fails
    // all pending calls — including this one, exactly once.
    BreakConnection(sock);
    return;
  }
  if (wake) KickEventFd(sock->wake_fd);
}

Status TcpChannel::SendV2(const std::shared_ptr<Sock>& sock,
                          std::string framed) {
  bool handoff = false;
  {
    MutexLock guard(sock->out_mu);
    sock->outbuf.append(framed);
    // An active writer is obliged to re-check the buffer before it
    // retires, so these bytes ride its next send.
    if (sock->writer_active) return Status::OK();
    sock->writer_active = true;
    if (sock->ring_mode) {
      sock->ring_handoff = true;
      handoff = true;
    }
  }
  if (handoff) {
    // The reader's ring owns the socket writes; wake it to turn the
    // parked outbuf into a SEND SQE. Until the send completes the
    // writer role stays claimed, so concurrent callers keep corking.
    KickEventFd(sock->wake_fd);
    return Status::OK();
  }
  return DrainOutbuf(sock);
}

bool TcpChannel::CorkOutbuf(const std::shared_ptr<Sock>& sock) {
  MutexLock guard(sock->out_mu);
  if (sock->writer_active) return false;
  sock->writer_active = true;
  return true;
}

Status TcpChannel::DrainOutbuf(const std::shared_ptr<Sock>& sock) {
  std::string local;
  while (true) {
    {
      MutexLock guard(sock->out_mu);
      if (sock->outbuf.empty()) {
        sock->writer_active = false;
        return Status::OK();
      }
      local.clear();
      local.swap(sock->outbuf);
    }
    Status s = SendAll(sock->fd, Slice(local), &io_counters_);
    if (!s.ok()) {
      // The stream is broken mid-frame; callers whose bytes we
      // combined are failed with everyone else when the caller breaks
      // the connection and the reader sweeps pending_.
      MutexLock guard(sock->out_mu);
      sock->writer_active = false;
      return s;
    }
  }
}

Status TcpChannel::Call(const Slice& request, std::string* reply) {
  return Call(request, reply, CallOptions{});
}

Status TcpChannel::Call(const Slice& request, std::string* reply,
                        const CallOptions& options) {
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu);
    std::string reply GUARDED_BY(mu);
  };
  auto waiter = std::make_shared<Waiter>();
  CallAsync(request, options, [waiter](Status s, std::string r) {
    MutexLock guard(waiter->mu);
    waiter->status = std::move(s);
    waiter->reply = std::move(r);
    waiter->done = true;
    waiter->cv.SignalAll();
  });
  MutexLock lock(waiter->mu);
  while (!waiter->done) waiter->cv.Wait(waiter->mu);
  if (waiter->status.ok()) *reply = std::move(waiter->reply);
  return waiter->status;
}

Status TcpChannel::SendOneWay(const Slice& message) {
  std::shared_ptr<Sock> sock;
  uint32_t version = 0;
  Status s;
  {
    MutexLock lock(mu_);
    s = EnsureConnectedLocked();
    if (s.ok()) {
      sock = sock_;
      version = wire_version_;
    }
  }
  if (s.ok()) {
    std::string framed;
    {
      std::string payload;
      payload.push_back(static_cast<char>(kMsgOneWay));
      payload.append(message.data(), message.size());
      AppendFrame(&framed, payload);
    }
    if (version >= kProtocolV2) {
      s = SendV2(sock, std::move(framed));
      if (!s.ok()) BreakConnection(sock);
    } else {
      MutexLock wguard(write_mu_);
      s = SendAll(sock->fd, framed, &io_counters_);
      if (!s.ok()) TearDownV1(sock);
    }
  }
  if (!s.ok()) {
    // Lost, like any dropped one-way message: no failure signal (§5) —
    // the sender finds out through a Receive timeout, by design.
    one_ways_lost_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace rrq::net
