#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/logging.h"

namespace rrq::net {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status MakeAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Waits until `fd` is ready for `events` or `deadline_micros` (steady
// clock) passes. OK / TimedOut / IOError.
Status PollFd(int fd, short events, uint64_t deadline_micros) {
  while (true) {
    const uint64_t now = NowMicros();
    if (now >= deadline_micros) return Status::TimedOut("poll deadline");
    pollfd pfd{fd, events, 0};
    const int timeout_ms =
        static_cast<int>((deadline_micros - now + 999) / 1000);
    const int n = poll(&pfd, 1, timeout_ms);
    if (n > 0) return Status::OK();
    if (n == 0) return Status::TimedOut("poll deadline");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpServer

TcpServer::TcpServer(TcpServerOptions options, RpcHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");

  sockaddr_in addr;
  RRQ_RETURN_IF_ERROR(MakeAddr(options_.bind_address, options_.port, &addr));

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // Connection sockets a killed predecessor left in TIME_WAIT must not
  // block rebinding the listener — a restarted daemon reclaims its port.
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("bind " + options_.bind_address + ":" +
                     std::to_string(options_.port));
    close(fd);
    return s;
  }
  if (listen(fd, options_.backlog) != 0) {
    Status s = Errno("listen");
    close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Errno("getsockname");
    close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);

  listen_fd_.store(fd);
  running_.store(true);
  acceptor_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Unblock accept(), then unblock every connection's recv().
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    shutdown(listen_fd, SHUT_RDWR);
    close(listen_fd);
  }
  {
    std::lock_guard<std::mutex> guard(conn_mu_);
    for (int fd : conn_fds_) shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> guard(conn_mu_);
    workers.swap(conn_threads_);
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener closed by Stop() (or fatal: stop accepting).
    }
    if (!running_.load()) {
      close(fd);
      return;
    }
    SetNoDelay(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd]() { ConnectionLoop(fd); });
  }
}

void TcpServer::ConnectionLoop(int fd) {
  FrameReader reader;
  char buf[16384];
  bool protocol_error = false;

  while (running_.load() && !protocol_error) {
    // Drain every complete frame already buffered.
    std::string payload;
    while (true) {
      Status next = reader.Next(&payload);
      if (next.IsNotFound()) break;
      if (!next.ok()) {  // Corrupt frame: drop the connection.
        protocol_error = true;
        break;
      }
      if (payload.empty()) {  // No message kind byte.
        protocol_error = true;
        break;
      }
      const unsigned char kind = static_cast<unsigned char>(payload[0]);
      const Slice request(payload.data() + 1, payload.size() - 1);
      if (kind == kMsgCall) {
        std::string reply;
        const Status handled = handler_(request, &reply);
        std::string out;
        EncodeStatus(handled, &out);
        out.append(reply);
        std::string framed;
        AppendFrame(&framed, out);
        // Count before sending: a caller that has its reply in hand
        // must observe the counter already bumped.
        served_.fetch_add(1, std::memory_order_relaxed);
        size_t sent = 0;
        while (sent < framed.size()) {
          const ssize_t n = send(fd, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
          if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            protocol_error = true;  // Peer gone; nothing left to do.
            break;
          }
          sent += static_cast<size_t>(n);
        }
        if (protocol_error) break;
      } else if (kind == kMsgOneWay) {
        std::string ignored;
        handler_(request, &ignored);
        served_.fetch_add(1, std::memory_order_relaxed);
      } else {
        protocol_error = true;
        break;
      }
    }
    if (protocol_error) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      // Clean close must not leave a partial frame behind.
      if (!reader.AtEnd().ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Reset/shutdown: connection is gone.
    }
    reader.Feed(Slice(buf, static_cast<size_t>(n)));
  }
  close(fd);
  std::lock_guard<std::mutex> guard(conn_mu_);
  for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
    if (*it == fd) {
      conn_fds_.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// TcpChannel

TcpChannel::TcpChannel(TcpChannelOptions options)
    : options_(std::move(options)) {}

TcpChannel::~TcpChannel() { Close(); }

void TcpChannel::Close() {
  std::lock_guard<std::mutex> guard(mu_);
  CloseLocked();
}

void TcpChannel::CloseLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

Status TcpChannel::ConnectOnceLocked() {
  sockaddr_in addr;
  RRQ_RETURN_IF_ERROR(MakeAddr(options_.host, options_.port, &addr));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  // Non-blocking connect so the attempt honors the connect deadline.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const uint64_t deadline = NowMicros() + options_.connect_timeout_micros;
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    Status ready = PollFd(fd, POLLOUT, deadline);
    if (!ready.ok()) {
      close(fd);
      return ready.IsTimedOut() ? Status::TimedOut("connect timed out")
                                : ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close(fd);
      return Status::IOError("connect: " + std::string(std::strerror(err)));
    }
  } else if (rc != 0) {
    Status s = Errno("connect");
    close(fd);
    return s;
  }
  fcntl(fd, F_SETFL, flags);
  SetNoDelay(fd);
  fd_ = fd;
  reader_ = FrameReader();
  connects_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status TcpChannel::EnsureConnectedLocked() {
  if (fd_ >= 0) return Status::OK();
  // Reconnect-with-backoff, bounded. This is the only retry loop in
  // the transport, and it runs strictly before any request bytes are
  // sent — so it can never duplicate a request.
  uint64_t backoff = options_.backoff_initial_micros;
  Status last = Status::Unavailable("no connect attempts made");
  for (int attempt = 0; attempt < options_.max_connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff = std::min(backoff * 2, options_.backoff_max_micros);
    }
    last = ConnectOnceLocked();
    if (last.ok()) return last;
    if (last.IsInvalidArgument()) return last;  // Bad address: hopeless.
  }
  return Status::Unavailable("connect to " + options_.host + ":" +
                             std::to_string(options_.port) + " failed: " +
                             last.ToString());
}

Status TcpChannel::SendAllLocked(const Slice& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable("send failed: " +
                                 std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpChannel::ReadReplyLocked(std::string* payload) {
  const uint64_t deadline = NowMicros() + options_.call_timeout_micros;
  char buf[16384];
  while (true) {
    Status next = reader_.Next(payload);
    if (next.ok()) return next;
    if (next.IsCorruption()) return next;  // Protocol violation: loud.
    Status ready = PollFd(fd_, POLLIN, deadline);
    if (!ready.ok()) {
      if (ready.IsTimedOut()) {
        // A straggler reply may still arrive on this stream, so the
        // connection cannot be reused; the caller closes it.
        return Status::Unavailable("call deadline exceeded");
      }
      return Status::Unavailable("poll failed: " + ready.ToString());
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      // EOF before the reply completed: the server died with our
      // request possibly executed — the §2 uncertainty. A torn frame
      // (Corruption from AtEnd) and a clean mid-call close look the
      // same to the clerk: Unavailable, resolve via reconnect.
      Status torn = reader_.AtEnd();
      return Status::Unavailable(torn.ok()
                                     ? "connection closed before reply"
                                     : "connection torn mid-reply: " +
                                           torn.ToString());
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    reader_.Feed(Slice(buf, static_cast<size_t>(n)));
  }
}

Status TcpChannel::Call(const Slice& request, std::string* reply) {
  std::lock_guard<std::mutex> guard(mu_);
  RRQ_RETURN_IF_ERROR(EnsureConnectedLocked());

  std::string framed;
  {
    std::string payload;
    payload.push_back(static_cast<char>(kMsgCall));
    payload.append(request.data(), request.size());
    AppendFrame(&framed, payload);
  }
  Status s = SendAllLocked(framed);
  if (!s.ok()) {
    CloseLocked();
    return s;
  }
  std::string wire;
  s = ReadReplyLocked(&wire);
  if (!s.ok()) {
    CloseLocked();
    return s;
  }
  // [handler status][reply bytes], exactly like the simulated network
  // propagating a handler's return value.
  Slice input(wire);
  Status handled = DecodeStatus(&input);
  if (!handled.ok()) return handled;
  reply->assign(input.data(), input.size());
  return Status::OK();
}

Status TcpChannel::SendOneWay(const Slice& message) {
  std::lock_guard<std::mutex> guard(mu_);
  Status s = EnsureConnectedLocked();
  if (s.ok()) {
    std::string framed;
    std::string payload;
    payload.push_back(static_cast<char>(kMsgOneWay));
    payload.append(message.data(), message.size());
    AppendFrame(&framed, payload);
    s = SendAllLocked(framed);
    if (!s.ok()) CloseLocked();
  }
  if (!s.ok()) {
    // Lost, like any dropped one-way message: no failure signal (§5) —
    // the sender finds out through a Receive timeout, by design.
    one_ways_lost_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace rrq::net
