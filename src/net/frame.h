#ifndef RRQ_NET_FRAME_H_
#define RRQ_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace rrq::net {

// Wire framing for the TCP transport. Every message travels as one
// frame:
//
//   +----------------+--------------------+------------------+
//   | fixed32 length | fixed32 masked CRC |  payload bytes   |
//   +----------------+--------------------+------------------+
//        4 bytes           4 bytes            `length` bytes
//
// `length` counts only the payload; the CRC is crc32c(payload),
// masked with the LevelDB convention so payloads that themselves
// contain CRCs stay checkable. A real socket delivers arbitrary
// bytes, so the decoder is a trust boundary: an impossible length, a
// CRC mismatch, or a stream that ends inside a frame (a torn frame)
// is rejected as Corruption, never acted on.

constexpr size_t kFrameHeaderSize = 8;

/// Upper bound on a frame payload. Queue elements are far smaller;
/// its real job is rejecting garbage lengths before any allocation.
constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Appends one frame carrying `payload` to `*out`.
void AppendFrame(std::string* out, const Slice& payload);

/// Status codec shared by the transport (the handler's result travels
/// ahead of the reply bytes) and the queue-service byte protocol.
void EncodeStatus(const Status& s, std::string* out);
Status DecodeStatus(Slice* input);

/// Incremental frame decoder. Feed() bytes in any fragmentation; each
/// successful Next() yields one validated payload. After any
/// Corruption the reader stays poisoned — a byte stream with a bad
/// frame cannot be resynchronized, the connection must be dropped.
class FrameReader {
 public:
  FrameReader() = default;

  void Feed(const Slice& data);

  /// OK: `*payload` holds the next frame's payload. NotFound: the
  /// buffered bytes do not yet complete a frame (feed more).
  /// Corruption: invalid length or CRC mismatch.
  Status Next(std::string* payload);

  /// Verdict once the stream has ended (peer closed the connection):
  /// OK when no partial frame is buffered, Corruption otherwise (the
  /// stream was torn mid-frame).
  Status AtEnd() const;

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace rrq::net

#endif  // RRQ_NET_FRAME_H_
