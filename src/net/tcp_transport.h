#ifndef RRQ_NET_TCP_TRANSPORT_H_
#define RRQ_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "net/io_backend.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::net {

class ClientUringIo;  // net/uring_backend.h

// See net/wire.h for the v1/v2 payload layouts and how the version is
// negotiated on the first frame of each connection.

struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from port().
  uint16_t port = 0;
  int backlog = 128;
  /// Handler worker threads. 0 = std::thread::hardware_concurrency().
  int workers = 0;
  /// Requests flagged by the blocking hint run on elastic overflow
  /// threads (spawned on demand, reaped as they finish) so a parked
  /// long-poll cannot starve the bounded pool. This caps how many may
  /// exist at once; past the cap such requests fall back to the pool.
  int max_blocking_threads = 64;
  /// Event-loop mechanics (DESIGN.md §13): kAuto prefers io_uring and
  /// falls back to epoll with a logged reason when the kernel or
  /// sandbox denies it — never a startup failure.
  IoBackendKind backend = IoBackendKind::kAuto;
};

/// Serves an RpcHandler over TCP. One I/O loop — epoll readiness or an
/// io_uring completion ring, chosen at Start() — owns every
/// socket (accept, reads, backpressured writes); decoded requests are
/// executed on a bounded worker pool, so concurrent calls from one v2
/// connection — and from many connections — run handlers in parallel
/// and their commits coalesce into group-commit batches. Completed
/// replies are appended to a per-connection outbox and flushed with
/// writev, corking whatever has accumulated by the time the socket is
/// writable. v1 connections keep the PR 3 contract: requests execute
/// one at a time, in arrival order, replies in request order.
///
/// Connection state lives exactly as long as the connection: the loop
/// drops it the moment the socket closes (no per-connection thread to
/// reap, no fd roster that only Stop() trims).
class TcpServer {
 public:
  /// Returns true for requests that may park their worker thread for a
  /// long time (e.g. a Dequeue carrying a wait timeout); see
  /// TcpServerOptions::max_blocking_threads. Must be set before
  /// Start() and must be thread-safe.
  using BlockingHint = std::function<bool(const Slice& request)>;

  TcpServer(TcpServerOptions options, RpcHandler handler);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void set_blocking_hint(BlockingHint hint) { hint_ = std::move(hint); }

  /// Binds, listens, and starts the I/O loop and worker pool. IOError
  /// when the address cannot be bound.
  Status Start();
  void Stop();

  /// The actually bound port (resolves port 0 after Start()).
  uint16_t port() const { return port_; }

  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for sending invalid frames or unknown
  /// message kinds.
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  /// Currently open connections — returns to zero when clients hang
  /// up, regardless of how many came and went (the PR 3 server only
  /// reclaimed connection state in Stop()).
  uint64_t active_connections() const {
    return active_conns_.load(std::memory_order_relaxed);
  }
  /// Connections that negotiated (or defaulted to) the serialized v1
  /// protocol.
  uint64_t v1_connections() const {
    return v1_conns_.load(std::memory_order_relaxed);
  }
  /// Per-loop I/O syscall counters for the resolved backend (§13):
  /// waits/recvs/sends for epoll, enters/SQE batches/CQEs for uring.
  IoLoopStats io_stats() const {
    return SnapshotIoCounters(backend_name_.load(std::memory_order_relaxed),
                              io_counters_);
  }
  /// "epoll" or "uring" once started; what kAuto actually resolved to.
  const char* io_backend_name() const {
    return backend_name_.load(std::memory_order_relaxed);
  }

 private:
  using Conn = ServerConn;
  using Task = ServerTask;

  // ServerIoBackend::Sink — events delivered by backend_->Wait() on
  // the loop thread.
  class SinkImpl final : public ServerIoBackend::Sink {
   public:
    explicit SinkImpl(TcpServer* server) : server_(server) {}
    void OnAccepted(int fd) override;
    void OnRecvData(const std::shared_ptr<ServerConn>& conn,
                    Slice data) override;
    void OnRecvEof(const std::shared_ptr<ServerConn>& conn) override;
    void OnConnError(const std::shared_ptr<ServerConn>& conn) override;
    void OnWake() override;

   private:
    TcpServer* const server_;
  };

  void LoopMain();
  // Decodes buffered frames into dispatched tasks; false on protocol
  // violation (caller closes the connection).
  bool DrainFrames(const std::shared_ptr<Conn>& conn);
  void Dispatch(const std::shared_ptr<Conn>& conn, Task task);
  // Submits whatever Dispatch accumulated in loop_pending_ with one
  // pool lock and one wakeup, however many frames the readable sweep
  // decoded. Loop thread only.
  void SubmitBatch();
  void RunTask(const std::shared_ptr<Conn>& conn, Task task, bool defer_flush);
  // With defer_flush the reply is appended to the outbox but the
  // socket write is left to FlushDeferred(), so replies completed by
  // one worker drain go out corked in a single writev.
  void EnqueueReply(const std::shared_ptr<Conn>& conn, std::string framed,
                    bool defer_flush = false);
  // The calling thread's connections with deferred (unflushed) reply
  // bytes. Per worker thread; the loop thread never defers.
  std::vector<std::shared_ptr<Conn>>& Deferred();
  void FlushDeferred();
  // Hands this thread's deferred connections to the pool-wide orphan
  // list and wakes an idle worker to flush them. A worker about to run
  // a task of unknown duration must not carry deferred bytes into it:
  // the task may sleep for seconds while a finished reply sits unsent
  // in the outbox with nothing left to send it.
  void PublishDeferredLocked() REQUIRES(pool_mu_);
  void CloseConn(const std::shared_ptr<Conn>& conn, bool protocol_error);
  std::shared_ptr<Conn> LookupConn(int fd);
  // Asks the loop to re-examine `fd` (re-arm write interest / reap a
  // failed writer). Safe from any thread.
  void RequestAttention(int fd);
  void ProcessAttention();
  void SubmitToPool(std::function<void()> fn, bool blocking);
  void WorkerMain();
  // Joins elastic threads that have finished.
  void ReapBlockingThreadsLocked() REQUIRES(pool_mu_);

  TcpServerOptions options_;
  RpcHandler handler_;
  BlockingHint hint_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;

  // Event-loop mechanics behind the Sink seam. Created in Start()
  // (kAuto resolves against the uring probe), shut down in Stop().
  std::unique_ptr<ServerIoBackend> backend_;
  SinkImpl sink_{this};
  IoCounters io_counters_;
  std::atomic<const char*> backend_name_{"none"};

  // Connection roster. The loop thread is the only mutator; workers
  // reach connections through the shared_ptr captured at dispatch.
  Mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_ GUARDED_BY(conns_mu_);

  Mutex attention_mu_;
  std::vector<int> attention_ GUARDED_BY(attention_mu_);

  // Tasks decoded by the current readable sweep, awaiting SubmitBatch.
  // Loop thread only.
  std::vector<std::function<void()>> loop_pending_;

  Mutex pool_mu_;
  CondVar pool_cv_;
  std::deque<std::function<void()>> pool_queue_ GUARDED_BY(pool_mu_);
  // Deferred-reply connections published by workers that moved on to
  // another task before flushing (see PublishDeferredLocked). Drained
  // by FlushDeferred from whichever thread flushes next.
  std::vector<std::shared_ptr<Conn>> orphan_deferred_ GUARDED_BY(pool_mu_);
  // Start()/Stop() only, which the caller serializes; workers never
  // touch the vector itself.
  std::vector<std::thread> workers_;
  bool pool_stop_ GUARDED_BY(pool_mu_) = false;
  int blocking_threads_ GUARDED_BY(pool_mu_) = 0;
  std::vector<std::thread> blocking_live_ GUARDED_BY(pool_mu_);
  std::vector<std::thread::id> blocking_finished_ GUARDED_BY(pool_mu_);

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> active_conns_{0};
  std::atomic<uint64_t> v1_conns_{0};
};

struct TcpChannelOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Deadline on each TCP connect attempt (and on the v2 hello
  /// exchange riding on a fresh connection).
  uint64_t connect_timeout_micros = 1'000'000;
  /// Deadline on a whole Call (send + wait for the reply frame). Must
  /// exceed the longest server-side blocking operation (a Dequeue's
  /// wait timeout rides inside the request, not the transport).
  uint64_t call_timeout_micros = 15'000'000;
  /// Bounded reconnect: attempts per Call at establishing a
  /// connection, with exponential backoff between attempts. Only
  /// connecting retries — a request whose bytes may have reached the
  /// server is never resent (§2: its fate is resolved by the client
  /// protocol, not the transport).
  int max_connect_attempts = 10;
  uint64_t backoff_initial_micros = 2'000;
  uint64_t backoff_max_micros = 250'000;
  /// Highest wire version to offer (net/wire.h). kProtocolV1 forces
  /// the serialized PR 3 protocol — useful against old servers and in
  /// interop tests; kProtocolV2 multiplexes and falls back to v1
  /// automatically when the server drops the hello.
  uint32_t max_protocol_version = kProtocolV2;
  /// Reader-loop mechanics for v2 connections (DESIGN.md §13): kAuto
  /// prefers io_uring — the demux reader submits corked sends, re-arms
  /// its recv, and reaps reply completions in one io_uring_enter — and
  /// falls back to the poll() loop when unavailable. v1 connections
  /// always use plain blocking syscalls.
  IoBackendKind backend = IoBackendKind::kAuto;
};

/// Message carried by the Unavailable status a TcpChannel produces
/// when a call's own deadline expires (v1 and v2 alike). Stable: pool
/// and clerk layers match on it to attribute expiries per caller.
inline constexpr std::string_view kCallDeadlineExceededMessage =
    "call deadline exceeded";

/// True when `s` is a TcpChannel per-call deadline expiry — the §2
/// uncertainty flavor where the request is known to have been sent but
/// the reply was given up on (any straggler is discarded by id).
inline bool IsCallDeadlineExpiry(const Status& s) {
  return s.IsUnavailable() &&
         s.message().find(kCallDeadlineExceededMessage) != std::string_view::npos;
}

/// Client connection to a TcpServer. Connects lazily on first use and
/// reconnects (with backoff, bounded) whenever a call finds the
/// channel disconnected.
///
/// On a v2 connection many calls share the one socket: writers
/// serialize on a single send path, a demux reader thread matches
/// kMsgReplyV2 correlation ids to pending calls, and each call carries
/// its own deadline. A deadline expiry fails that call alone
/// (Unavailable; a straggler reply is later discarded by id) — only
/// protocol corruption or a dead socket poisons the connection, which
/// fails every pending call and reconnects on next use. Thread-safe:
/// one shared channel serves many clerk threads.
///
/// On a v1 connection (old server, or max_protocol_version = 1) calls
/// are serialized exactly as in PR 3, and a timeout must poison the
/// connection because v1 replies carry no ids to tell stragglers
/// apart.
class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(TcpChannelOptions options);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Futures-style synchronous call, built on CallAsync: registers the
  /// call, then blocks until its callback fires.
  Status Call(const Slice& request, std::string* reply) override;
  /// Call whose deadline is max(call_timeout_micros, the caller's
  /// min_deadline_micros) — the knob blocking server-side ops use so
  /// the transport outwaits them (CallOptions::min_deadline_micros).
  Status Call(const Slice& request, std::string* reply,
              const CallOptions& options) override;

  /// Pipelined call: returns as soon as the request is on the wire
  /// (or has failed). `done` fires exactly once — from the demux
  /// reader on a reply, a deadline expiry, or connection teardown;
  /// inline on a v1 connection or when the send itself fails. The
  /// callback must not call Close() or destroy the channel.
  void CallAsync(const Slice& request, Callback done) override;
  void CallAsync(const Slice& request, const CallOptions& options,
                 Callback done) override;

  /// Best effort: a one-way message that cannot be sent is silently
  /// lost (the §5 contract — no failure signal exists for it).
  Status SendOneWay(const Slice& message) override;

  /// Fails every pending call and drops the connection; the next call
  /// reconnects. Must not be called from a call's callback.
  void Close();

  /// Repoints the channel at a different server (failover: a promoted
  /// backup): tears the current connection down like Close() and
  /// directs the next reconnect at host:port. Calls in flight fail
  /// with Unavailable and their fate is resolved by the client
  /// protocol, exactly as for a connection loss. Must not be called
  /// from a call's callback.
  void SetTarget(const std::string& host, uint16_t port);

  uint64_t connects() const { return connects_.load(std::memory_order_relaxed); }
  uint64_t one_ways_lost() const {
    return one_ways_lost_.load(std::memory_order_relaxed);
  }
  /// v2 replies whose correlation id matched no pending call —
  /// stragglers from expired deadlines (discarded, §2-safe) or a
  /// misbehaving server.
  uint64_t late_replies() const {
    return late_replies_.load(std::memory_order_relaxed);
  }
  /// Calls failed by their own deadline while the connection lived on.
  uint64_t deadline_expiries() const {
    return deadline_expiries_.load(std::memory_order_relaxed);
  }
  /// Test hook: severs the live connection exactly as an I/O error
  /// would — pending calls fail, the next call reconnects. Lets tests
  /// drive the failure/reconnect races against a healthy server.
  void BreakConnectionForTest();
  /// Wire version of the current (or most recent) connection; 0 before
  /// the first connect.
  uint32_t negotiated_version() const {
    return version_.load(std::memory_order_relaxed);
  }
  /// Per-loop I/O syscall counters for the reader/writer paths (§13).
  IoLoopStats io_stats() const {
    return SnapshotIoCounters(io_backend_.load(std::memory_order_relaxed),
                              io_counters_);
  }
  /// "uring" or "poll" for the current (or most recent) v2 connection;
  /// "none" before the first connect, "v1" on a serialized connection.
  const char* io_backend_name() const {
    return io_backend_.load(std::memory_order_relaxed);
  }

 private:
  struct Sock;  // fd + reader-wake eventfd; closed when the last user lets go
  struct PendingCall {
    Callback done;
    uint64_t deadline_micros = 0;
  };

  // Connect + negotiate. May sleep in backoff (holding mu_).
  Status EnsureConnectedLocked() REQUIRES(mu_);
  Status ConnectOnce(int* fd_out);
  // Sends the hello and waits for the server's. FailedPrecondition is
  // the internal "v1 server closed on us" verdict (never escapes).
  Status NegotiateV2(int fd, uint32_t* version);
  void ReaderMain(std::shared_ptr<Sock> sock);
  // Reader-loop bodies behind ReaderMain's shared setup/teardown. Each
  // returns the connection-fatal status.
  Status ReaderLoopPoll(const std::shared_ptr<Sock>& sock,
                        FrameReader* reader);
  Status ReaderLoopUring(const std::shared_ptr<Sock>& sock,
                         FrameReader* reader, ClientUringIo* io);
  // Fails every expired pending call; returns the earliest remaining
  // deadline (UINT64_MAX = none) and records it as reader_wait_until_.
  uint64_t SweepDeadlines();
  // Dispatches every complete reply frame in `reader` to its pending
  // call; non-OK on a corrupt stream.
  Status DispatchReplies(FrameReader* reader);
  // Called on a send completion in the uring reader: re-queues bytes
  // that accumulated while the send was in flight, or retires the
  // combining-writer role.
  void FinishRingSend(const std::shared_ptr<Sock>& sock, ClientUringIo* io);
  // Marks the socket dead and wakes the reader, which fails every
  // pending call and clears the connection.
  void BreakConnection(const std::shared_ptr<Sock>& sock);
  // v2 send path: appends the frame to the socket's combining buffer
  // and drains it if no other thread is already writing, so frames
  // issued concurrently (or from reply callbacks in a burst) cork into
  // few sends. An error means the stream broke mid-frame; the caller
  // must BreakConnection.
  Status SendV2(const std::shared_ptr<Sock>& sock, std::string framed);
  // Claims the combining-writer role without sending (true on
  // success); the claimant must later DrainOutbuf — which sends the
  // accumulated frames and retires the writer role — even on failure
  // paths.
  bool CorkOutbuf(const std::shared_ptr<Sock>& sock);
  Status DrainOutbuf(const std::shared_ptr<Sock>& sock);
  // v1 serialized exchange (PR 3 semantics) under write_mu_.
  Status CallV1(const std::shared_ptr<Sock>& sock, const Slice& request,
                std::string* reply, uint64_t min_deadline_micros);
  void TearDownV1(const std::shared_ptr<Sock>& sock);

  TcpChannelOptions options_;

  Mutex mu_;
  CondVar reader_exit_cv_;
  std::shared_ptr<Sock> sock_ GUARDED_BY(mu_);  // null while disconnected
  uint32_t wire_version_ GUARDED_BY(mu_) = 0;   // of sock_
  // 1 after a v1 server dropped a hello.
  uint32_t server_version_hint_ GUARDED_BY(mu_) = 0;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, PendingCall> pending_ GUARDED_BY(mu_);
  // Deadline the reader is currently sleeping toward (UINT64_MAX =
  // none); a new call with an earlier one kicks the wake eventfd.
  uint64_t reader_wait_until_ GUARDED_BY(mu_) = 0;
  // Spawned and joined under mu_ (join happens only after the reader
  // announced reader_done_, so it cannot deadlock).
  std::thread reader_;
  bool reader_done_ GUARDED_BY(mu_) = true;

  // Serializes socket writes (the single writer path); on a v1
  // connection it also covers the reply read, i.e. the whole exchange
  // (each Sock carries its own v1 FrameReader, so a straggling
  // exchange on a torn-down socket never shares state with a fresh
  // connection).
  Mutex write_mu_;

  std::atomic<uint64_t> connects_{0};
  std::atomic<uint64_t> one_ways_lost_{0};
  std::atomic<uint64_t> late_replies_{0};
  std::atomic<uint64_t> deadline_expiries_{0};
  std::atomic<uint32_t> version_{0};
  IoCounters io_counters_;
  std::atomic<const char*> io_backend_{"none"};
};

}  // namespace rrq::net

#endif  // RRQ_NET_TCP_TRANSPORT_H_
