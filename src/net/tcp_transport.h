#ifndef RRQ_NET_TCP_TRANSPORT_H_
#define RRQ_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/transport.h"
#include "util/status.h"

namespace rrq::net {

// RPC convention on top of the frame layer: a request frame's payload
// is [1-byte kind][request bytes]. kCall expects exactly one reply
// frame back, whose payload is [EncodeStatus(handler result)][reply
// bytes] — mirroring the simulated Network, where a handler's non-OK
// return reaches the caller as the Call result. kOneWay expects no
// reply at all. Calls on one connection are strictly serialized
// (request, then its reply), so no ids are needed on the wire; for
// concurrency, open one channel per clerk, as the paper's client
// model already prescribes.
constexpr unsigned char kMsgCall = 1;
constexpr unsigned char kMsgOneWay = 2;

struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from port().
  uint16_t port = 0;
  int backlog = 64;
};

/// Serves an RpcHandler over TCP: a listener thread accepts
/// connections, and each connection gets a worker thread running the
/// frame/RPC protocol until the peer disconnects or violates it.
/// Stop() (and the destructor) shuts down the listener and every
/// connection and joins all threads.
class TcpServer {
 public:
  TcpServer(TcpServerOptions options, RpcHandler handler);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts accepting. IOError when the address
  /// cannot be bound.
  Status Start();
  void Stop();

  /// The actually bound port (resolves port 0 after Start()).
  uint16_t port() const { return port_; }

  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for sending invalid frames or unknown
  /// message kinds.
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);

  TcpServerOptions options_;
  RpcHandler handler_;
  std::atomic<bool> running_{false};
  // Atomic: Stop() clears it concurrently with the acceptor thread's
  // reads (closing the fd is what unblocks that thread's accept()).
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

struct TcpChannelOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Deadline on each TCP connect attempt.
  uint64_t connect_timeout_micros = 1'000'000;
  /// Deadline on a whole Call (send + wait for the reply frame). Must
  /// exceed the longest server-side blocking operation (a Dequeue's
  /// wait timeout rides inside the request, not the transport).
  uint64_t call_timeout_micros = 15'000'000;
  /// Bounded reconnect: attempts per Call at establishing a
  /// connection, with exponential backoff between attempts. Only
  /// connecting retries — a request whose bytes may have reached the
  /// server is never resent (§2: its fate is resolved by the client
  /// protocol, not the transport).
  int max_connect_attempts = 10;
  uint64_t backoff_initial_micros = 2'000;
  uint64_t backoff_max_micros = 250'000;
};

/// Client connection to a TcpServer. Connects lazily on first use and
/// reconnects (with backoff, bounded) whenever a Call finds the
/// channel disconnected. Thread-safe; calls are serialized.
class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(TcpChannelOptions options);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  Status Call(const Slice& request, std::string* reply) override;

  /// Best effort: a one-way message that cannot be sent is silently
  /// lost (the §5 contract — no failure signal exists for it).
  Status SendOneWay(const Slice& message) override;

  /// Drops the connection; the next Call reconnects.
  void Close();

  uint64_t connects() const { return connects_.load(std::memory_order_relaxed); }
  uint64_t one_ways_lost() const {
    return one_ways_lost_.load(std::memory_order_relaxed);
  }

 private:
  // All Locked methods require mu_ held.
  Status EnsureConnectedLocked();
  Status ConnectOnceLocked();
  Status SendAllLocked(const Slice& data);
  // Reads one reply frame within the call deadline. On any failure the
  // connection is unusable; the caller must CloseLocked().
  Status ReadReplyLocked(std::string* payload);
  void CloseLocked();

  TcpChannelOptions options_;
  std::mutex mu_;
  int fd_ = -1;
  FrameReader reader_;
  std::atomic<uint64_t> connects_{0};
  std::atomic<uint64_t> one_ways_lost_{0};
};

}  // namespace rrq::net

#endif  // RRQ_NET_TCP_TRANSPORT_H_
