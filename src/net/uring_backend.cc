// io_uring ServerIoBackend and the client channel's ring I/O.
//
// The container has no liburing, so this file drives the rings with
// raw syscalls: io_uring_setup + three mmaps (SQ ring, SQE array, CQ
// ring — merged under IORING_FEAT_SINGLE_MMAP) and release/acquire
// atomics on the ring indices, the same fast path liburing compiles
// down to.
//
// Shape of the server loop (DESIGN.md §13):
//   - one multishot IORING_OP_ACCEPT on the listener,
//   - one multishot IORING_OP_POLL_ADD on the wake eventfd,
//   - per connection, one multishot IORING_OP_RECV drawing from a
//     registered provided-buffer ring, so inbound bytes arrive as
//     completions with zero recv syscalls and no EAGAIN probes,
//   - IORING_OP_WRITEV SQEs for backpressured reply flushes (the
//     EPOLLOUT continuation of the epoll backend): the SQE references
//     the outbox strings in place and a short write resubmits the
//     remainder at its byte offset — frames are never re-encoded, so
//     the §2 never-resend contract is untouched by SQE resubmission.
//
// All SQE preparation happens on the loop thread at the top of Wait(),
// immediately before the enter that submits it. Retired connections
// close their fd first (under conn->mu, in TcpServer::CloseConn), so a
// deferred re-arm can never target a recycled fd number: an intent for
// a retired conn is dropped, and an armed op is cancelled by user_data
// (never by fd).

#include "net/uring_backend.h"

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace rrq::net {
namespace uring_internal {

namespace {

int SysSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

long SysEnter(int fd, unsigned to_submit, unsigned min_complete,
              unsigned flags, const void* arg, size_t argsz) {
  return syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, arg,
                 argsz);
}

int SysRegister(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(
      syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

}  // namespace

/// One ring: SQ/CQ mmaps, SQE accounting, and the provided-buffer ring
/// the server's multishot recvs draw from. Single-threaded by design —
/// every submission happens on the thread that owns the ring.
class Ring {
 public:
  static std::unique_ptr<Ring> Create(unsigned entries, std::string* reason) {
    auto ring = std::unique_ptr<Ring>(new Ring());
    io_uring_params p{};
    // CQ must absorb a full multishot burst without overflow churn.
    p.flags = IORING_SETUP_CQSIZE;
    p.cq_entries = entries * 4;
    ring->fd_ = SysSetup(entries, &p);
    if (ring->fd_ < 0) {
      if (reason) {
        *reason = std::string("io_uring_setup: ") + std::strerror(errno);
      }
      return nullptr;
    }
    if (!(p.features & IORING_FEAT_SINGLE_MMAP) ||
        !(p.features & IORING_FEAT_NODROP) ||
        !(p.features & IORING_FEAT_EXT_ARG)) {
      if (reason) *reason = "kernel lacks required io_uring features";
      return nullptr;
    }
    const size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
    const size_t cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    ring->ring_sz_ = std::max(sq_sz, cq_sz);
    ring->ring_mem_ =
        mmap(nullptr, ring->ring_sz_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring->fd_, IORING_OFF_SQ_RING);
    if (ring->ring_mem_ == MAP_FAILED) {
      ring->ring_mem_ = nullptr;
      if (reason) *reason = "mmap sq ring failed";
      return nullptr;
    }
    ring->sqes_sz_ = p.sq_entries * sizeof(io_uring_sqe);
    ring->sqes_ = static_cast<io_uring_sqe*>(
        mmap(nullptr, ring->sqes_sz_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring->fd_, IORING_OFF_SQES));
    if (ring->sqes_ == MAP_FAILED) {
      ring->sqes_ = nullptr;
      if (reason) *reason = "mmap sqes failed";
      return nullptr;
    }
    char* base = static_cast<char*>(ring->ring_mem_);
    ring->sq_head_ = reinterpret_cast<uint32_t*>(base + p.sq_off.head);
    ring->sq_tail_ = reinterpret_cast<uint32_t*>(base + p.sq_off.tail);
    ring->sq_mask_ = *reinterpret_cast<uint32_t*>(base + p.sq_off.ring_mask);
    ring->sq_array_ = reinterpret_cast<uint32_t*>(base + p.sq_off.array);
    ring->sq_entries_ = p.sq_entries;
    ring->cq_head_ = reinterpret_cast<uint32_t*>(base + p.cq_off.head);
    ring->cq_tail_ = reinterpret_cast<uint32_t*>(base + p.cq_off.tail);
    ring->cq_mask_ = *reinterpret_cast<uint32_t*>(base + p.cq_off.ring_mask);
    ring->cqes_ = reinterpret_cast<io_uring_cqe*>(base + p.cq_off.cqes);
    ring->sq_tail_local_ = *ring->sq_tail_;
    return ring;
  }

  ~Ring() {
    if (buf_ring_mem_ != nullptr) munmap(buf_ring_mem_, buf_ring_sz_);
    if (buf_pool_ != nullptr) munmap(buf_pool_, buf_pool_sz_);
    if (sqes_ != nullptr) munmap(sqes_, sqes_sz_);
    if (ring_mem_ != nullptr) munmap(ring_mem_, ring_sz_);
    if (fd_ >= 0) close(fd_);
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  /// Null when the SQ is full (flush with SubmitAndWait(0, ...) first).
  io_uring_sqe* GetSqe() {
    const uint32_t head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (sq_tail_local_ - head >= sq_entries_) return nullptr;
    const uint32_t idx = sq_tail_local_ & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[idx] = idx;
    ++sq_tail_local_;
    ++pending_;
    return sqe;
  }

  unsigned pending() const { return pending_; }

  /// Publishes pending SQEs and enters the ring once: submit-only when
  /// min_complete == 0, submit-and-wait (with an EXT_ARG timeout when
  /// timeout_micros != UINT64_MAX) otherwise. Returns 0, or -errno on
  /// an unrecoverable enter failure. A timeout is not an error.
  int SubmitAndWait(unsigned min_complete, uint64_t timeout_micros,
                    IoCounters* c) {
    __atomic_store_n(sq_tail_, sq_tail_local_, __ATOMIC_RELEASE);
    unsigned flags = 0;
    io_uring_getevents_arg arg{};
    __kernel_timespec ts{};
    const void* argp = nullptr;
    size_t argsz = 0;
    if (min_complete > 0) {
      flags |= IORING_ENTER_GETEVENTS;
      if (timeout_micros != UINT64_MAX) {
        ts.tv_sec = static_cast<int64_t>(timeout_micros / 1'000'000);
        ts.tv_nsec = static_cast<long long>((timeout_micros % 1'000'000) * 1000);
        arg.ts = reinterpret_cast<uint64_t>(&ts);
        flags |= IORING_ENTER_EXT_ARG;
        argp = &arg;
        argsz = sizeof(arg);
      }
    }
    while (true) {
      const unsigned to_submit = pending_;
      const long r = SysEnter(fd_, to_submit, min_complete, flags, argp, argsz);
      if (c) {
        c->enters.fetch_add(1, std::memory_order_relaxed);
        if (flags & IORING_ENTER_GETEVENTS) {
          c->waits.fetch_add(1, std::memory_order_relaxed);
        }
        if (to_submit > 0 && r > 0) {
          c->sqes.fetch_add(static_cast<uint64_t>(r),
                            std::memory_order_relaxed);
          c->sqe_batches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (r >= 0) {
        pending_ -= std::min<unsigned>(pending_, static_cast<unsigned>(r));
        if (pending_ > 0 && min_complete == 0) continue;  // partial submit
        return 0;
      }
      if (errno == EINTR) continue;
      if (errno == ETIME) return 0;  // wait timed out; CQ simply stayed empty
      if (errno == EBUSY) {
        // CQ overflow backpressure (FEAT_NODROP): flushing queued
        // completions needs a GETEVENTS pass before submission resumes.
        flags |= IORING_ENTER_GETEVENTS;
        continue;
      }
      return -errno;
    }
  }

  bool CqeReady() const {
    return *cq_head_ != __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  }

  bool PeekCqe(io_uring_cqe* out) {
    const uint32_t head = *cq_head_;
    if (head == __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) return false;
    *out = cqes_[head & cq_mask_];
    __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
    return true;
  }

  /// Registers a provided-buffer ring (`nbufs` buffers of `buf_size`,
  /// nbufs a power of two) for BUFFER_SELECT recvs in group `bgid`.
  bool RegisterBufRing(uint16_t bgid, uint32_t nbufs, size_t buf_size,
                       std::string* reason) {
    buf_ring_sz_ = nbufs * sizeof(io_uring_buf);
    buf_ring_mem_ = mmap(nullptr, buf_ring_sz_, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (buf_ring_mem_ == MAP_FAILED) {
      buf_ring_mem_ = nullptr;
      if (reason) *reason = "mmap buf ring failed";
      return false;
    }
    io_uring_buf_reg reg{};
    reg.ring_addr = reinterpret_cast<uint64_t>(buf_ring_mem_);
    reg.ring_entries = nbufs;
    reg.bgid = bgid;
    if (SysRegister(fd_, IORING_REGISTER_PBUF_RING, &reg, 1) != 0) {
      if (reason) {
        *reason =
            std::string("IORING_REGISTER_PBUF_RING: ") + std::strerror(errno);
      }
      return false;
    }
    buf_pool_sz_ = nbufs * buf_size;
    buf_pool_ = static_cast<char*>(mmap(nullptr, buf_pool_sz_,
                                        PROT_READ | PROT_WRITE,
                                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
    if (buf_pool_ == MAP_FAILED) {
      buf_pool_ = nullptr;
      if (reason) *reason = "mmap buffer pool failed";
      return false;
    }
    buf_size_ = buf_size;
    buf_mask_ = nbufs - 1;
    for (uint32_t i = 0; i < nbufs; ++i) {
      io_uring_buf* slot = BufSlot(i & buf_mask_);
      slot->addr = reinterpret_cast<uint64_t>(buf_pool_ + i * buf_size);
      slot->len = static_cast<uint32_t>(buf_size);
      slot->bid = static_cast<uint16_t>(i);
    }
    buf_tail_local_ = static_cast<uint16_t>(nbufs);
    __atomic_store_n(BufTail(), buf_tail_local_, __ATOMIC_RELEASE);
    return true;
  }

  /// Returns buffer `bid` to the kernel's provided-buffer ring.
  void RecycleBuf(uint16_t bid) {
    io_uring_buf* slot = BufSlot(buf_tail_local_ & buf_mask_);
    slot->addr = reinterpret_cast<uint64_t>(buf_pool_ + bid * buf_size_);
    slot->len = static_cast<uint32_t>(buf_size_);
    slot->bid = bid;
    ++buf_tail_local_;
    __atomic_store_n(BufTail(), buf_tail_local_, __ATOMIC_RELEASE);
  }

  char* BufData(uint16_t bid) const { return buf_pool_ + bid * buf_size_; }

 private:
  Ring() = default;

  // The kernel's io_uring_buf_ring layout is an array of 16-byte
  // io_uring_buf slots, with the ring tail aliased into the reserved
  // u16 of slot 0. The uapi header expresses the array with
  // __DECLARE_FLEX_ARRAY, whose empty-struct placeholder is size 1 in
  // C++ and shifts `bufs` to offset 8 — so address slots by raw offset
  // instead of through the union.
  io_uring_buf* BufSlot(uint32_t idx) {
    return reinterpret_cast<io_uring_buf*>(static_cast<char*>(buf_ring_mem_) +
                                           idx * sizeof(io_uring_buf));
  }
  uint16_t* BufTail() {
    return &static_cast<io_uring_buf_ring*>(buf_ring_mem_)->tail;
  }

  int fd_ = -1;
  void* ring_mem_ = nullptr;
  size_t ring_sz_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_sz_ = 0;

  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  uint32_t sq_entries_ = 0;
  uint32_t sq_tail_local_ = 0;
  unsigned pending_ = 0;  // SQEs appended since the last submit

  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  void* buf_ring_mem_ = nullptr;
  size_t buf_ring_sz_ = 0;
  char* buf_pool_ = nullptr;
  size_t buf_pool_sz_ = 0;
  size_t buf_size_ = 0;
  uint32_t buf_mask_ = 0;
  uint16_t buf_tail_local_ = 0;
};

namespace {

void PrepAcceptMultishot(io_uring_sqe* sqe, int fd, uint64_t ud) {
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = fd;
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->user_data = ud;
}

void PrepPollMultishot(io_uring_sqe* sqe, int fd, uint64_t ud) {
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->len = IORING_POLL_ADD_MULTI;
  sqe->poll32_events = POLLIN;
  sqe->user_data = ud;
}

void PrepRecvMultishot(io_uring_sqe* sqe, int fd, uint16_t bgid, uint64_t ud) {
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = bgid;
  sqe->user_data = ud;
}

void PrepRecvSingle(io_uring_sqe* sqe, int fd, void* buf, size_t len,
                    uint64_t ud) {
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->user_data = ud;
}

void PrepSend(io_uring_sqe* sqe, int fd, const void* buf, size_t len,
              uint64_t ud) {
  sqe->opcode = IORING_OP_SEND;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = ud;
}

void PrepWritev(io_uring_sqe* sqe, int fd, const iovec* iov, unsigned cnt,
                uint64_t ud) {
  sqe->opcode = IORING_OP_WRITEV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(iov);
  sqe->len = cnt;
  sqe->user_data = ud;
}

void PrepCancel(io_uring_sqe* sqe, uint64_t target_ud, uint64_t ud) {
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_ud;
  sqe->user_data = ud;
}

}  // namespace
}  // namespace uring_internal

using uring_internal::PrepAcceptMultishot;
using uring_internal::PrepCancel;
using uring_internal::PrepPollMultishot;
using uring_internal::PrepRecvMultishot;
using uring_internal::PrepRecvSingle;
using uring_internal::PrepSend;
using uring_internal::PrepWritev;
using uring_internal::Ring;

bool UringAvailable(std::string* reason) {
  // Functional probe, not just an op table: sets up a ring, registers
  // a provided-buffer ring, and pushes one byte through a multishot
  // recv on a socketpair — exactly the feature set the backend needs.
  // Kernels that pass the ops probe but predate multishot recv (<6.0)
  // or buffer rings (<5.19) fail here and fall back to epoll.
  static const std::pair<bool, std::string> result = [] {
    std::pair<bool, std::string> r{false, std::string()};
    std::string why;
    auto ring = Ring::Create(8, &why);
    if (!ring) {
      r.second = why;
      return r;
    }
    if (!ring->RegisterBufRing(/*bgid=*/0, /*nbufs=*/4, /*buf_size=*/4096,
                               &why)) {
      r.second = why;
      return r;
    }
    int sp[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
      r.second = "socketpair failed";
      return r;
    }
    io_uring_sqe* sqe = ring->GetSqe();
    PrepRecvMultishot(sqe, sp[0], 0, /*ud=*/42);
    const char byte = 'x';
    ssize_t ignored = write(sp[1], &byte, 1);
    (void)ignored;
    ring->SubmitAndWait(/*min_complete=*/1, /*timeout_micros=*/1'000'000,
                        nullptr);
    io_uring_cqe cqe{};
    bool saw_data = false;
    while (ring->PeekCqe(&cqe)) {
      if (cqe.user_data == 42 && cqe.res == 1 &&
          (cqe.flags & IORING_CQE_F_BUFFER)) {
        saw_data = true;
      }
    }
    close(sp[0]);
    close(sp[1]);
    if (!saw_data) {
      r.second = "multishot recv with provided buffers not functional";
      return r;
    }
    r.first = true;
    return r;
  }();
  if (reason && !result.first) *reason = result.second;
  return result.first;
}

namespace {

/// Per-connection uring bookkeeping, hung off ServerConn::backend_state.
/// Loop-thread-only.
struct UringConnState {
  uint64_t recv_ud = 0;   // armed multishot recv, 0 = none
  uint64_t write_ud = 0;  // in-flight writev, 0 = none
  bool want_recv = false;
  bool want_writev = false;
  bool retired = false;
  iovec iov[64];  // must outlive the in-flight writev SQE
};

UringConnState* St(const std::shared_ptr<ServerConn>& conn) {
  return static_cast<UringConnState*>(conn->backend_state.get());
}

class UringServerBackend final : public ServerIoBackend {
 public:
  UringServerBackend(std::unique_ptr<Ring> ring, IoCounters* counters)
      : ring_(std::move(ring)), counters_(counters) {}

  ~UringServerBackend() override { Shutdown(); }

  Status Start(int listen_fd, int wake_fd, Sink* sink) override {
    listen_fd_ = listen_fd;
    wake_fd_ = wake_fd;
    sink_ = sink;
    rearm_accept_ = true;
    rearm_wake_ = true;
    return Status::OK();
  }

  void Shutdown() override {
    // Dropping the ring cancels every in-flight op; the op map releases
    // its connection refs. Conn fds are owned and closed by the server.
    ops_.clear();
    conn_work_.clear();
    cancels_.clear();
    ring_.reset();
  }

  Status SubmitRecv(const std::shared_ptr<ServerConn>& conn) override {
    auto st = std::make_shared<UringConnState>();
    st->want_recv = true;
    conn->backend_state = st;
    conn_work_.push_back(conn);
    return Status::OK();
  }

  void SubmitWritev(const std::shared_ptr<ServerConn>& conn) override {
    UringConnState* st = St(conn);
    if (st == nullptr || st->retired) return;
    st->want_writev = true;
    conn_work_.push_back(conn);
  }

  void Retire(const std::shared_ptr<ServerConn>& conn) override {
    UringConnState* st = St(conn);
    if (st == nullptr || st->retired) return;
    st->retired = true;
    // The fd is already closed; armed ops are cancelled by user_data
    // (never by fd — the number may be recycled by the next accept).
    if (st->recv_ud != 0) cancels_.push_back(st->recv_ud);
    if (st->write_ud != 0) cancels_.push_back(st->write_ud);
  }

  Status Wait() override {
    if (!wedged_.ok()) return wedged_;
    PrepPending();
    if (!ring_->CqeReady()) {
      const int r = ring_->SubmitAndWait(/*min_complete=*/1,
                                         /*timeout_micros=*/UINT64_MAX,
                                         counters_);
      if (r < 0) {
        wedged_ = Status::IOError(std::string("io_uring_enter: ") +
                                  std::strerror(-r));
        return wedged_;
      }
    } else if (ring_->pending() > 0) {
      ring_->SubmitAndWait(0, UINT64_MAX, counters_);
    }
    io_uring_cqe cqe{};
    while (ring_->PeekCqe(&cqe)) {
      counters_->cqes.fetch_add(1, std::memory_order_relaxed);
      Handle(cqe);
    }
    return Status::OK();
  }

  const char* name() const override { return "uring"; }

 private:
  struct Op {
    enum Kind { kRecv, kWritev } kind;
    std::shared_ptr<ServerConn> conn;
  };

  static constexpr uint64_t kAcceptUd = 1;
  static constexpr uint64_t kWakeUd = 2;
  static constexpr uint64_t kCancelUd = 3;
  static constexpr uint16_t kBgid = 0;

  io_uring_sqe* GetSqeBlocking() {
    io_uring_sqe* sqe;
    while ((sqe = ring_->GetSqe()) == nullptr) {
      ring_->SubmitAndWait(0, UINT64_MAX, counters_);
    }
    return sqe;
  }

  void PrepPending() {
    if (rearm_accept_) {
      rearm_accept_ = false;
      PrepAcceptMultishot(GetSqeBlocking(), listen_fd_, kAcceptUd);
    }
    if (rearm_wake_) {
      rearm_wake_ = false;
      PrepPollMultishot(GetSqeBlocking(), wake_fd_, kWakeUd);
    }
    if (!conn_work_.empty()) {
      std::vector<std::shared_ptr<ServerConn>> work;
      work.swap(conn_work_);
      for (auto& conn : work) {
        UringConnState* st = St(conn);
        if (st == nullptr || st->retired) continue;
        if (st->want_recv && st->recv_ud == 0) {
          st->want_recv = false;
          const uint64_t ud = next_ud_++;
          PrepRecvMultishot(GetSqeBlocking(), conn->fd, kBgid, ud);
          ops_.emplace(ud, Op{Op::kRecv, conn});
          st->recv_ud = ud;
        }
        if (st->want_writev && st->write_ud == 0) {
          st->want_writev = false;
          ArmWritev(conn, st);
        }
      }
    }
    for (uint64_t target : cancels_) {
      PrepCancel(GetSqeBlocking(), target, kCancelUd);
    }
    cancels_.clear();
  }

  void ArmWritev(const std::shared_ptr<ServerConn>& conn, UringConnState* st) {
    unsigned cnt = 0;
    {
      MutexLock guard(conn->mu);
      if (conn->closed || conn->write_failed) return;
      if (conn->outbox.empty()) {
        conn->want_write = false;
        return;
      }
      // The iovecs reference the outbox strings in place: workers only
      // push_back while want_write is set (deque references are stable
      // under push_back) and only the completion below pops, so the
      // bytes stay pinned for the SQE's lifetime.
      for (const auto& b : conn->outbox) {
        const size_t off = (cnt == 0) ? conn->head_off : 0;
        st->iov[cnt].iov_base = const_cast<char*>(b.data()) + off;
        st->iov[cnt].iov_len = b.size() - off;
        if (++cnt == 64) break;
      }
    }
    const uint64_t ud = next_ud_++;
    PrepWritev(GetSqeBlocking(), conn->fd, st->iov, cnt, ud);
    ops_.emplace(ud, Op{Op::kWritev, conn});
    st->write_ud = ud;
  }

  void Handle(const io_uring_cqe& cqe) {
    switch (cqe.user_data) {
      case kAcceptUd: {
        if (cqe.res >= 0) sink_->OnAccepted(cqe.res);
        if (!(cqe.flags & IORING_CQE_F_MORE)) rearm_accept_ = true;
        return;
      }
      case kWakeUd: {
        if (!(cqe.flags & IORING_CQE_F_MORE)) rearm_wake_ = true;
        if (cqe.res >= 0) {
          uint64_t tick;
          while (read(wake_fd_, &tick, sizeof(tick)) > 0) {
          }
          counters_->recvs.fetch_add(1, std::memory_order_relaxed);
          sink_->OnWake();
        }
        return;
      }
      case kCancelUd:
        return;
      default:
        break;
    }
    auto it = ops_.find(cqe.user_data);
    if (it == ops_.end()) {
      if (cqe.flags & IORING_CQE_F_BUFFER) {
        ring_->RecycleBuf(
            static_cast<uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT));
      }
      return;
    }
    if (it->second.kind == Op::kRecv) {
      HandleRecv(cqe, it);
    } else {
      HandleWritev(cqe, it);
    }
  }

  void HandleRecv(const io_uring_cqe& cqe,
                  std::unordered_map<uint64_t, Op>::iterator it) {
    std::shared_ptr<ServerConn> conn = it->second.conn;
    UringConnState* st = St(conn);
    const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
    if (!more) {
      ops_.erase(it);
      st->recv_ud = 0;
    }
    const int bid = (cqe.flags & IORING_CQE_F_BUFFER)
                        ? static_cast<int>(cqe.flags >> IORING_CQE_BUFFER_SHIFT)
                        : -1;
    if (st->retired) {
      if (bid >= 0) ring_->RecycleBuf(static_cast<uint16_t>(bid));
      return;
    }
    if (cqe.res > 0 && bid >= 0) {
      sink_->OnRecvData(conn, Slice(ring_->BufData(static_cast<uint16_t>(bid)),
                                    static_cast<size_t>(cqe.res)));
      ring_->RecycleBuf(static_cast<uint16_t>(bid));
      // The sink may have retired the connection (protocol error).
      if (!more && !st->retired) {
        st->want_recv = true;
        conn_work_.push_back(conn);
      }
      return;
    }
    if (bid >= 0) ring_->RecycleBuf(static_cast<uint16_t>(bid));
    if (cqe.res == 0) {
      sink_->OnRecvEof(conn);
      return;
    }
    if (cqe.res == -ENOBUFS) {
      // All provided buffers were in use; the multishot ended. Buffers
      // were recycled as their data was consumed — re-arm.
      st->want_recv = true;
      conn_work_.push_back(conn);
      return;
    }
    if (cqe.res != -ECANCELED) sink_->OnConnError(conn);
  }

  void HandleWritev(const io_uring_cqe& cqe,
                    std::unordered_map<uint64_t, Op>::iterator it) {
    std::shared_ptr<ServerConn> conn = it->second.conn;
    UringConnState* st = St(conn);
    ops_.erase(it);
    st->write_ud = 0;
    if (st->retired) return;
    bool failed = false;
    bool again = false;
    {
      MutexLock guard(conn->mu);
      if (conn->closed) return;
      if (cqe.res <= 0) {
        conn->write_failed = true;
        failed = true;
      } else {
        size_t left = static_cast<size_t>(cqe.res);
        while (left > 0 && !conn->outbox.empty()) {
          const size_t avail = conn->outbox.front().size() - conn->head_off;
          if (left >= avail) {
            left -= avail;
            conn->outbox.pop_front();
            conn->head_off = 0;
          } else {
            conn->head_off += left;
            left = 0;
          }
        }
        if (conn->outbox.empty()) {
          conn->want_write = false;
        } else {
          // Short write, or replies appended while the SQE was in
          // flight: resubmit the remainder at its exact byte offset.
          again = true;
        }
      }
    }
    if (failed) {
      sink_->OnConnError(conn);
      return;
    }
    if (again) {
      st->want_writev = true;
      conn_work_.push_back(conn);
    }
  }

  std::unique_ptr<Ring> ring_;
  IoCounters* const counters_;
  Sink* sink_ = nullptr;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  uint64_t next_ud_ = 16;
  std::unordered_map<uint64_t, Op> ops_;
  bool rearm_accept_ = false;
  bool rearm_wake_ = false;
  std::vector<std::shared_ptr<ServerConn>> conn_work_;
  std::vector<uint64_t> cancels_;
  Status wedged_;
};

}  // namespace

std::unique_ptr<ServerIoBackend> CreateUringServerBackend(
    IoCounters* counters, std::string* reason) {
  auto ring = Ring::Create(256, reason);
  if (!ring) return nullptr;
  if (!ring->RegisterBufRing(/*bgid=*/0, /*nbufs=*/16, /*buf_size=*/65536,
                             reason)) {
    return nullptr;
  }
  return std::make_unique<UringServerBackend>(std::move(ring), counters);
}

// ---------------------------------------------------------------------------
// ClientUringIo
// ---------------------------------------------------------------------------

namespace {
constexpr uint64_t kClientRecvUd = 1;
constexpr uint64_t kClientWakeUd = 2;
constexpr uint64_t kClientSendUd = 3;
}  // namespace

std::unique_ptr<ClientUringIo> ClientUringIo::Create(int sock_fd, int wake_fd,
                                                     IoCounters* counters,
                                                     std::string* reason) {
  if (!UringAvailable(reason)) return nullptr;
  auto ring = Ring::Create(16, reason);
  if (!ring) return nullptr;
  return std::unique_ptr<ClientUringIo>(
      new ClientUringIo(std::move(ring), sock_fd, wake_fd, counters));
}

ClientUringIo::ClientUringIo(std::unique_ptr<uring_internal::Ring> ring,
                             int sock_fd, int wake_fd, IoCounters* counters)
    : ring_(std::move(ring)),
      sock_fd_(sock_fd),
      wake_fd_(wake_fd),
      counters_(counters) {
  recv_buf_.resize(65536);
}

ClientUringIo::~ClientUringIo() = default;

void ClientUringIo::QueueSend(std::string data) {
  send_buf_ = std::move(data);
  send_off_ = 0;
  send_inflight_ = true;
  send_submitted_ = false;
}

bool ClientUringIo::PrepPending() {
  if (!recv_armed_ && wedged_.ok()) {
    PrepRecvSingle(ring_->GetSqe(), sock_fd_, recv_buf_.data(),
                   recv_buf_.size(), kClientRecvUd);
    recv_armed_ = true;
  }
  if (!wake_armed_) {
    PrepPollMultishot(ring_->GetSqe(), wake_fd_, kClientWakeUd);
    wake_armed_ = true;
  }
  if (send_inflight_ && !send_submitted_) {
    PrepSend(ring_->GetSqe(), sock_fd_, send_buf_.data() + send_off_,
             send_buf_.size() - send_off_, kClientSendUd);
    send_submitted_ = true;
  }
  return true;
}

void ClientUringIo::Wait(uint64_t timeout_micros, bool expect_reply,
                         const std::function<void(Slice)>& on_recv,
                         Events* ev) {
  if (!wedged_.ok()) {
    ev->error = wedged_;
    return;
  }
  const bool fresh_send = send_inflight_ && !send_submitted_;
  PrepPending();
  if (!ring_->CqeReady()) {
    // The one-enter burst: the corked request bytes, the recv re-arm,
    // and the completion reap all ride this single syscall.
    //
    // On an unsaturated socket the SEND SQE completes inline during
    // this very enter, and with min_complete=1 its lone CQE would end
    // the wait — one wasted wakeup per burst just to learn our own
    // bytes left. When the caller is owed replies, demand one
    // completion beyond the send so the wait runs on to the reply
    // batch (or EOF/error, which also posts a CQE). Capped: under
    // genuine send backpressure the send may outlive the reply, and
    // replies must not sit unreaped behind it for longer than a
    // scheduling beat.
    unsigned min_complete = 1;
    uint64_t wait_micros = timeout_micros;
    if (fresh_send && expect_reply) {
      min_complete = 2;
      wait_micros = std::min<uint64_t>(wait_micros, 10'000);
    }
    const int r = ring_->SubmitAndWait(min_complete, wait_micros, counters_);
    if (r < 0) {
      wedged_ = Status::Unavailable(std::string("io_uring_enter: ") +
                                    std::strerror(-r));
      ev->error = wedged_;
      return;
    }
  } else if (ring_->pending() > 0) {
    ring_->SubmitAndWait(0, UINT64_MAX, counters_);
  }
  bool any = false;
  io_uring_cqe cqe{};
  while (ring_->PeekCqe(&cqe)) {
    counters_->cqes.fetch_add(1, std::memory_order_relaxed);
    any = true;
    switch (cqe.user_data) {
      case kClientRecvUd: {
        recv_armed_ = false;
        if (cqe.res > 0) {
          on_recv(Slice(recv_buf_.data(), static_cast<size_t>(cqe.res)));
        } else if (cqe.res == 0) {
          ev->eof = true;
          wedged_ = Status::Unavailable("connection closed");
        } else if (cqe.res != -ECANCELED && cqe.res != -EINTR) {
          ev->error = Status::Unavailable(std::string("recv failed: ") +
                                          std::strerror(-cqe.res));
          wedged_ = ev->error;
        }
        break;
      }
      case kClientWakeUd: {
        if (!(cqe.flags & IORING_CQE_F_MORE)) wake_armed_ = false;
        if (cqe.res >= 0) {
          uint64_t tick;
          while (read(wake_fd_, &tick, sizeof(tick)) > 0) {
          }
          counters_->recvs.fetch_add(1, std::memory_order_relaxed);
          ev->wake = true;
        }
        break;
      }
      case kClientSendUd: {
        if (cqe.res < 0) {
          if (cqe.res != -ECANCELED && cqe.res != -EINTR) {
            ev->error = Status::Unavailable(std::string("send failed: ") +
                                            std::strerror(-cqe.res));
            wedged_ = ev->error;
          }
          send_inflight_ = false;
        } else {
          send_off_ += static_cast<size_t>(cqe.res);
          if (send_off_ >= send_buf_.size()) {
            send_inflight_ = false;
            send_submitted_ = false;
            send_buf_.clear();
            send_off_ = 0;
            ev->send_done = true;
          } else {
            // Short send under backpressure: the continuation resumes
            // at the exact byte offset on the next cycle (§2-safe — a
            // byte-stream continuation, never a re-encoded frame).
            send_submitted_ = false;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  if (!any) ev->timed_out = true;
}

}  // namespace rrq::net
