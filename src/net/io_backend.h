#ifndef RRQ_NET_IO_BACKEND_H_
#define RRQ_NET_IO_BACKEND_H_

/// Internal seam between TcpServer's protocol/dispatch logic and the
/// kernel event-delivery mechanics. Two implementations exist:
///
///   - epoll_backend.cc: the readiness loop that shipped in PR 5
///     (epoll_wait + bounded recv sweep + EPOLLOUT re-arm). All raw
///     epoll_* syscalls live in that translation unit.
///   - uring_backend.cc: an io_uring completion loop (multishot
///     IORING_OP_RECV into a provided-buffer ring, multishot accept,
///     a registered poll on the wake eventfd, and WRITEV SQEs for
///     backpressured reply flushes). All io_uring_* syscalls live
///     there, including the runtime capability probe.
///
/// Selection is runtime (`TcpServerOptions::backend`,
/// `TcpChannelOptions::backend`, `rrqd --net-backend`): `kAuto`
/// prefers io_uring and falls back to epoll with a logged reason when
/// the kernel or sandbox denies `io_uring_setup` or lacks the ops we
/// need — auto mode never fails to start.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/frame.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::net {

enum class IoBackendKind {
  kAuto,   // uring when available, else epoll
  kEpoll,  // force the readiness loop
  kUring,  // force io_uring (server start / channel connect fail if absent)
};

const char* IoBackendName(IoBackendKind kind);

/// Parses "auto" / "epoll" / "uring". Returns false on anything else.
bool ParseIoBackend(const std::string& text, IoBackendKind* out);

/// Runtime probe, cached after the first call: sets up a small ring,
/// registers a provided-buffer ring, and exercises a multishot recv on
/// a socketpair — the exact feature set uring_backend.cc relies on.
/// When unavailable, `*reason` (if non-null) says why (ENOSYS, EPERM
/// from seccomp, missing ops, pre-6.0 kernel without multishot recv).
bool UringAvailable(std::string* reason);

/// Resolves `requested` against the probe. kAuto silently degrades to
/// kEpoll; kUring stays kUring even when unavailable so the caller can
/// surface a hard error. `*note` (if non-null) gets a human-readable
/// explanation whenever the resolution was not a straight pass-through.
IoBackendKind ResolveIoBackend(IoBackendKind requested, std::string* note);

/// Per-loop I/O syscall counters. Incremented with relaxed atomics by
/// whichever threads drive the loop; snapshot via Snapshot().
struct IoCounters {
  std::atomic<uint64_t> waits{0};    // blocking event waits: epoll_wait /
                                     // poll / io_uring_enter w/ GETEVENTS
  std::atomic<uint64_t> recvs{0};    // recv/readv syscalls (0 in uring
                                     // loops: data arrives via CQE buffers)
  std::atomic<uint64_t> sends{0};    // send/writev syscalls made directly
  std::atomic<uint64_t> enters{0};   // every io_uring_enter; waits ⊆ enters
  std::atomic<uint64_t> sqes{0};     // submission queue entries submitted
  std::atomic<uint64_t> sqe_batches{0};  // enters that submitted >= 1 SQE
  std::atomic<uint64_t> cqes{0};     // completions reaped
};

/// Point-in-time copy of IoCounters plus the resolved backend name.
struct IoLoopStats {
  const char* backend = "none";
  uint64_t waits = 0;
  uint64_t recvs = 0;
  uint64_t sends = 0;
  uint64_t enters = 0;
  uint64_t sqes = 0;
  uint64_t sqe_batches = 0;
  uint64_t cqes = 0;

  /// Total loop I/O syscalls. For a readiness loop every loop syscall
  /// is a wait, a recv, or a send; for a uring loop every ring syscall
  /// is an enter (waits is a subset of enters, so it is not re-added)
  /// and direct recv/send still count (e.g. worker-side reply writev,
  /// eventfd drains). This is the honest collapse metric E22 reports.
  uint64_t io_syscalls() const { return recvs + sends + enters + (enters == 0 ? waits : 0); }
};

IoLoopStats SnapshotIoCounters(const char* backend, const IoCounters& c);

/// One decoded request awaiting dispatch (moved verbatim from
/// tcp_server.cc so both the server and the backends can name it).
struct ServerTask {
  unsigned char kind = 0;
  uint64_t corr_id = 0;
  std::string body;
};

/// Per-connection server state. Protocol fields (reader, version) are
/// loop-thread-only; the outbox and flush flags follow DESIGN.md §11.
struct ServerConn {
  int fd = -1;
  FrameReader reader;    // loop thread only
  uint32_t version = 0;  // 0 until hello; loop thread only

  rrq::Mutex mu;
  bool closed GUARDED_BY(mu) = false;
  bool want_write GUARDED_BY(mu) = false;  // flush hit EAGAIN; the backend
                                           // owns draining the outbox until
                                           // it clears this again
  bool write_failed GUARDED_BY(mu) = false;
  std::deque<std::string> outbox GUARDED_BY(mu);
  size_t head_off GUARDED_BY(mu) = 0;  // bytes of outbox.front() already sent

  // v1 connections process strictly one call at a time.
  bool v1_busy GUARDED_BY(mu) = false;
  std::deque<ServerTask> v1_backlog GUARDED_BY(mu);

  // Opaque per-connection backend bookkeeping (uring arming state,
  // in-flight writev buffers). Loop thread only.
  std::shared_ptr<void> backend_state;
};

/// Drains conn->outbox with writev until empty, EAGAIN (sets
/// want_write so the backend re-arms write interest), or a hard error
/// (sets write_failed). Shared by worker-side reply flushes and the
/// epoll backend's writable re-entry. Counts each writev into `sends`.
void FlushOutboxLocked(ServerConn* conn, IoCounters* counters) REQUIRES(conn->mu);

/// Event-loop mechanics behind TcpServer. All methods except Wake()
/// and stats() must be called from the loop thread. Implementations
/// deliver events through the Sink *during* Wait().
class ServerIoBackend {
 public:
  /// Callbacks invoked from inside Wait() on the loop thread.
  class Sink {
   public:
    virtual ~Sink() = default;
    /// A connection was accepted; the sink owns `fd` from here.
    virtual void OnAccepted(int fd) = 0;
    /// `data` is valid only for the duration of the call.
    virtual void OnRecvData(const std::shared_ptr<ServerConn>& conn, Slice data) = 0;
    /// Peer closed the connection (clean FIN).
    virtual void OnRecvEof(const std::shared_ptr<ServerConn>& conn) = 0;
    /// Hard socket error (recv/write failure, EPOLLERR).
    virtual void OnConnError(const std::shared_ptr<ServerConn>& conn) = 0;
    /// The wake eventfd fired (already drained by the backend).
    virtual void OnWake() = 0;
  };

  virtual ~ServerIoBackend() = default;

  /// `listen_fd` and `wake_fd` stay owned by the caller.
  virtual Status Start(int listen_fd, int wake_fd, Sink* sink) = 0;

  /// Releases ring/epoll resources and closes any connection fds whose
  /// close was deferred by Retire(). Call after the loop thread exits.
  virtual void Shutdown() = 0;

  /// Registers a fresh connection for receive interest.
  virtual Status SubmitRecv(const std::shared_ptr<ServerConn>& conn) = 0;

  /// Arms write interest for a conn whose flush left want_write set.
  /// The backend drains the outbox (writev SQEs on uring, EPOLLOUT +
  /// FlushOutboxLocked on epoll) until empty, clearing want_write, or
  /// reports failure via OnConnError.
  virtual void SubmitWritev(const std::shared_ptr<ServerConn>& conn) = 0;

  /// The server is done with this connection: stop receive interest
  /// and close conn->fd once no kernel operation still references it
  /// (immediately on epoll; after in-flight CQEs drain on uring).
  virtual void Retire(const std::shared_ptr<ServerConn>& conn) = 0;

  /// One blocking wait-and-deliver cycle. Returns a non-OK status only
  /// for unrecoverable loop failures.
  virtual Status Wait() = 0;

  virtual const char* name() const = 0;
};

/// `kind` must be kEpoll or kUring (resolve kAuto first). `counters`
/// is owned by the caller (TcpServer) and must outlive the backend; it
/// is shared so worker-side reply flushes and the loop accumulate into
/// one pool surfaced by TcpServer::io_stats().
std::unique_ptr<ServerIoBackend> CreateServerIoBackend(IoBackendKind kind,
                                                       IoCounters* counters);

/// Creates the uring server backend, or null (with a reason) when the
/// ring cannot be set up. Defined in uring_backend.cc.
std::unique_ptr<ServerIoBackend> CreateUringServerBackend(IoCounters* counters,
                                                          std::string* reason);
std::unique_ptr<ServerIoBackend> CreateEpollServerBackend(IoCounters* counters);

}  // namespace rrq::net

#endif  // RRQ_NET_IO_BACKEND_H_
