#ifndef RRQ_NET_WIRE_H_
#define RRQ_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::net {

// RPC conventions on top of the frame layer. Two wire versions share
// the same frame format ([fixed32 length][fixed32 masked CRC][payload])
// and differ only in the payload layout:
//
//   v1 (PR 3, serialized — one call in flight per connection):
//     request  [kMsgCall   ][body]            -> exactly one reply
//     reply    [EncodeStatus][reply bytes]     (no kind, no id)
//     one-way  [kMsgOneWay ][body]            -> no reply
//
//   v2 (multiplexed — many calls in flight, replies in any order):
//     hello    [kMsgHello  ][varint version]  -> hello back from server
//     request  [kMsgCallV2 ][varint id][body] -> one reply, eventually
//     reply    [kMsgReplyV2][varint id][EncodeStatus][reply bytes]
//     one-way  [kMsgOneWay ][body]            -> no reply
//
// Version negotiation rides on the first frame of a connection. A v2
// client opens with kMsgHello carrying the highest version it speaks;
// a v2 server answers with its own hello (min of the two) and switches
// the connection to multiplexed mode. A v1 server treats the unknown
// kind as a protocol error and drops the connection — the client
// detects the close-after-hello, reconnects, and speaks v1. That
// downgrade is safe under the §2 never-resend rule because a hello
// carries no request: nothing that may have executed is ever resent.
// A v1 client's first frame is kMsgCall/kMsgOneWay, which a v2 server
// recognizes and serves with the exact PR 3 behavior (in-order, one
// reply at a time, no ids).

constexpr unsigned char kMsgCall = 1;     // v1 call
constexpr unsigned char kMsgOneWay = 2;   // both versions
constexpr unsigned char kMsgHello = 3;    // v2 version negotiation
constexpr unsigned char kMsgCallV2 = 4;   // v2 call, correlation id
constexpr unsigned char kMsgReplyV2 = 5;  // v2 reply, correlation id

constexpr uint32_t kProtocolV1 = 1;
constexpr uint32_t kProtocolV2 = 2;

inline void AppendHelloPayload(std::string* out, uint32_t version) {
  out->push_back(static_cast<char>(kMsgHello));
  util::PutVarint32(out, version);
}

/// Parses the body of a kMsgHello frame (the bytes after the kind).
inline Status ParseHelloBody(Slice body, uint32_t* version) {
  if (!util::GetVarint32(&body, version).ok() || !body.empty() ||
      *version == 0) {
    return Status::Corruption("malformed hello");
  }
  return Status::OK();
}

}  // namespace rrq::net

#endif  // RRQ_NET_WIRE_H_
