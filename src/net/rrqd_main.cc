// rrqd — the recoverable-request queue daemon.
//
// Hosts a durable queue repository (plus a transaction manager and a
// demo KvStore-backed request server) and serves the queue-service
// byte protocol over TCP, so clerks in *other processes* run the
// paper's client protocol against a queue manager that really can be
// killed and restarted out from under them. All state lives under
// --dir; a restart with the same --dir recovers it from the WALs.
//
//   rrqd --dir /var/lib/rrqd [--host 127.0.0.1] [--port 0]
//        [--threads 2] [--workers N] [--request-queue requests]
//        [--no-server]
//
// --workers sizes the TCP handler pool (0 = hardware concurrency):
// that many queue-service requests execute in parallel, their commits
// coalescing into group-commit batches. Long-poll Dequeues are kept
// off the pool via the blocking hint, so parked clerks never starve
// short ops.
//
// --port 0 binds an ephemeral port; the actual address is announced on
// stdout as "rrqd: listening on <host>:<port> (pid <pid>)". The
// built-in server executes each request transactionally: it increments
// a per-rid execution counter in the KvStore and replies
// "done:<rid>:<count>" — so a post-mortem inspection of the store
// reveals exactly how many times each request executed, which is what
// the cross-process exactly-once test verifies.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "env/env.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/envelope.h"
#include "queue/queue_repository.h"
#include "server/server.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*sig*/) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir <state-dir> [--host H] [--port P] "
               "[--threads N] [--workers N] [--shards N] "
               "[--request-queue NAME] [--no-server]\n"
               "  --shards N  queue-repository shards (per-shard WAL "
               "streams; 0 = hardware concurrency).\n"
               "              An existing --dir keeps its on-disk shard "
               "count.\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrq;

  std::string dir;
  std::string host = "127.0.0.1";
  std::string request_queue = "requests";
  int port = 0;
  int threads = 1;
  int workers = 0;  // 0 = hardware concurrency
  int shards = 0;   // 0 = hardware concurrency
  bool run_server = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      dir = next();
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--workers") {
      workers = std::atoi(next());
    } else if (arg == "--shards") {
      shards = std::atoi(next());
    } else if (arg == "--request-queue") {
      request_queue = next();
    } else if (arg == "--no-server") {
      run_server = false;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (dir.empty() || port < 0 || port > 65535 || threads < 1 || workers < 0 ||
      shards < 0) {
    Usage(argv[0]);
    return 2;
  }

  env::Env* env = env::Env::Default();
  for (const char* sub : {"", "/txn", "/qm", "/db"}) {
    Status s = env->CreateDirIfMissing(dir + sub);
    if (!s.ok()) {
      std::fprintf(stderr, "rrqd: cannot create %s%s: %s\n", dir.c_str(), sub,
                   s.ToString().c_str());
      return 1;
    }
  }

  // Durable backend: coordinator, queue repository, and the demo
  // server's database, all recovering from WALs under --dir.
  txn::TxnManagerOptions txn_options;
  txn_options.env = env;
  txn_options.dir = dir + "/txn";
  txn::TransactionManager txn_mgr(txn_options);
  if (Status s = txn_mgr.Open(); !s.ok()) {
    std::fprintf(stderr, "rrqd: txn manager: %s\n", s.ToString().c_str());
    return 1;
  }

  queue::RepositoryOptions repo_options;
  repo_options.env = env;
  repo_options.dir = dir + "/qm";
  repo_options.shards = static_cast<unsigned>(shards);
  repo_options.in_doubt_resolver = [&txn_mgr](txn::TxnId id) {
    return txn_mgr.WasCommitted(id);
  };
  queue::QueueRepository repo("qm", repo_options);
  if (Status s = repo.Open(); !s.ok()) {
    std::fprintf(stderr, "rrqd: repository: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = repo.CreateQueue(request_queue);
      !s.ok() && !s.IsAlreadyExists()) {
    std::fprintf(stderr, "rrqd: create queue: %s\n", s.ToString().c_str());
    return 1;
  }

  storage::KvStoreOptions db_options;
  db_options.env = env;
  db_options.dir = dir + "/db";
  db_options.in_doubt_resolver = [&txn_mgr](txn::TxnId id) {
    return txn_mgr.WasCommitted(id);
  };
  storage::KvStore db("db", db_options);
  if (Status s = db.Open(); !s.ok()) {
    std::fprintf(stderr, "rrqd: kv store: %s\n", s.ToString().c_str());
    return 1;
  }

  // The demo back end: count executions per rid, transactionally with
  // the dequeue/reply, so every request's execution count is exactly
  // the number of committed server transactions that processed it.
  std::unique_ptr<server::Server> server;
  if (run_server) {
    server::ServerOptions server_options;
    server_options.name = "rrqd-server";
    server_options.request_queue = request_queue;
    server_options.threads = threads;
    server = std::make_unique<server::Server>(
        server_options, &repo, &txn_mgr,
        [&db](txn::Transaction* t,
              const queue::RequestEnvelope& request) -> Result<std::string> {
          const std::string key = "exec/" + request.rid;
          uint64_t count = 0;
          auto prior = db.GetForUpdate(t, key);
          if (prior.ok()) {
            count = std::strtoull(prior->c_str(), nullptr, 10);
          } else if (!prior.status().IsNotFound()) {
            return prior.status();
          }
          ++count;
          RRQ_RETURN_IF_ERROR(db.Put(t, key, std::to_string(count)));
          return "done:" + request.rid + ":" + std::to_string(count);
        });
    if (Status s = server->Start(); !s.ok()) {
      std::fprintf(stderr, "rrqd: server: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  net::QueueServiceDispatcher dispatcher(&repo);
  net::TcpServerOptions tcp_options;
  tcp_options.bind_address = host;
  tcp_options.port = static_cast<uint16_t>(port);
  tcp_options.workers = workers;
  net::TcpServer tcp(tcp_options,
                     [&dispatcher](const Slice& request, std::string* reply) {
                       return dispatcher.Handle(request, reply);
                     });
  tcp.set_blocking_hint(
      [](const Slice& request) { return net::QueueRequestMayBlock(request); });
  if (Status s = tcp.Start(); !s.ok()) {
    std::fprintf(stderr, "rrqd: listen: %s\n", s.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("rrqd: listening on %s:%u (pid %d)\n", host.c_str(),
              static_cast<unsigned>(tcp.port()), static_cast<int>(getpid()));
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("rrqd: shutting down\n");
  std::fflush(stdout);
  tcp.Stop();
  if (server != nullptr) server->Stop();
  return 0;
}
