// rrqd — the recoverable-request queue daemon.
//
// Hosts a durable queue repository (plus a transaction manager and a
// demo KvStore-backed request server) and serves the queue-service
// byte protocol over TCP, so clerks in *other processes* run the
// paper's client protocol against a queue manager that really can be
// killed and restarted out from under them. All state lives under
// --dir; a restart with the same --dir recovers it from the WALs.
//
//   rrqd --dir /var/lib/rrqd [--host 127.0.0.1] [--port 0]
//        [--threads 2] [--workers N] [--request-queue requests]
//        [--no-server]
//        [--role primary|backup] [--replicate-to H:P] [--repl-port P]
//        [--repl-mode async|ack] [--audit-queue NAME]
//
// --workers sizes the TCP handler pool (0 = hardware concurrency):
// that many queue-service requests execute in parallel, their commits
// coalescing into group-commit batches. Long-poll Dequeues are kept
// off the pool via the blocking hint, so parked clerks never starve
// short ops.
//
// --port 0 binds an ephemeral port; the actual address is announced on
// stdout as "rrqd: listening on <host>:<port> (pid <pid>)". The
// built-in server executes each request transactionally: it increments
// a per-rid execution counter in the KvStore and replies
// "done:<rid>:<count>" — so a post-mortem inspection of the store
// reveals exactly how many times each request executed, which is what
// the cross-process exactly-once test verifies.
//
// Replication (PR 9): "--role primary --replicate-to H:P" ships every
// committed record to the backup daemon's replication listener at
// H:P; "--repl-mode ack" additionally holds each commit's visibility
// until the backup acknowledges it (semi-synchronous — the local
// commit stands and the error surfaces if the backup is unreachable).
// "--role backup --repl-port P" serves the replication protocol on a
// second listener (announced as "rrqd: repl listening on <host>:<port>")
// and refuses client writes until a Promote admin op arrives; the
// demo server is only started at promotion, against the replicated
// state. --audit-queue makes the demo server enqueue
// "exec:<rid>:<count>" into that queue atomically with each
// execution, giving failover tests a replicated audit trail of
// exactly which requests executed.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "env/env.h"
#include "net/io_backend.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/envelope.h"
#include "queue/queue_repository.h"
#include "repl/replica_applier.h"
#include "repl/replication_log.h"
#include "repl/replication_sender.h"
#include "server/server.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*sig*/) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir <state-dir> [--host H] [--port P] "
               "[--threads N] [--workers N] [--shards N] "
               "[--request-queue NAME] [--no-server]\n"
               "  [--net-backend auto|epoll|uring] "
               "[--role primary|backup] [--replicate-to H:P] "
               "[--repl-port P] [--repl-mode async|ack] "
               "[--audit-queue NAME]\n"
               "  --net-backend  event-loop mechanics for the TCP "
               "listeners (default auto: io_uring when the\n"
               "              kernel supports it, else epoll; a forced "
               "uring that cannot come up degrades to\n"
               "              epoll with a logged reason, never a "
               "startup failure).\n"
               "  --shards N  queue-repository shards (per-shard WAL "
               "streams; 0 = hardware concurrency).\n"
               "              An existing --dir keeps its on-disk shard "
               "count.\n"
               "  --role primary requires --replicate-to; --role backup "
               "serves replication on --repl-port\n"
               "              and refuses writes until promoted.\n",
               argv0);
}

// "host:port" -> (host, port). False on malformed input.
bool ParseHostPort(const std::string& in, std::string* host, uint16_t* port) {
  const size_t colon = in.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= in.size()) {
    return false;
  }
  const long p = std::strtol(in.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) return false;
  *host = in.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrq;

  std::string dir;
  std::string host = "127.0.0.1";
  std::string request_queue = "requests";
  std::string audit_queue;
  std::string role = "standalone";
  std::string replicate_to;
  int port = 0;
  int repl_port = 0;
  int threads = 1;
  int workers = 0;  // 0 = hardware concurrency
  int shards = 0;   // 0 = hardware concurrency
  bool run_server = true;
  bool repl_ack = false;
  net::IoBackendKind net_backend = net::IoBackendKind::kAuto;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      dir = next();
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--workers") {
      workers = std::atoi(next());
    } else if (arg == "--shards") {
      shards = std::atoi(next());
    } else if (arg == "--request-queue") {
      request_queue = next();
    } else if (arg == "--audit-queue") {
      audit_queue = next();
    } else if (arg == "--net-backend") {
      if (!net::ParseIoBackend(next(), &net_backend)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--no-server") {
      run_server = false;
    } else if (arg == "--role") {
      role = next();
    } else if (arg == "--replicate-to") {
      replicate_to = next();
    } else if (arg == "--repl-port") {
      repl_port = std::atoi(next());
    } else if (arg == "--repl-mode") {
      const std::string mode = next();
      if (mode == "ack") {
        repl_ack = true;
      } else if (mode == "async") {
        repl_ack = false;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (dir.empty() || port < 0 || port > 65535 || repl_port < 0 ||
      repl_port > 65535 || threads < 1 || workers < 0 || shards < 0) {
    Usage(argv[0]);
    return 2;
  }
  if (role != "standalone" && role != "primary" && role != "backup") {
    Usage(argv[0]);
    return 2;
  }
  const bool is_primary = role == "primary";
  const bool is_backup = role == "backup";
  std::string backup_host;
  uint16_t backup_port = 0;
  if (is_primary &&
      !ParseHostPort(replicate_to, &backup_host, &backup_port)) {
    std::fprintf(stderr, "rrqd: --role primary needs --replicate-to H:P\n");
    return 2;
  }

  env::Env* env = env::Env::Default();
  for (const char* sub : {"", "/txn", "/qm", "/db"}) {
    Status s = env->CreateDirIfMissing(dir + sub);
    if (!s.ok()) {
      std::fprintf(stderr, "rrqd: cannot create %s%s: %s\n", dir.c_str(), sub,
                   s.ToString().c_str());
      return 1;
    }
  }

  // Durable backend: coordinator, queue repository, and the demo
  // server's database, all recovering from WALs under --dir.
  txn::TxnManagerOptions txn_options;
  txn_options.env = env;
  txn_options.dir = dir + "/txn";
  txn::TransactionManager txn_mgr(txn_options);
  if (Status s = txn_mgr.Open(); !s.ok()) {
    std::fprintf(stderr, "rrqd: txn manager: %s\n", s.ToString().c_str());
    return 1;
  }

  // Primary role: every commit's record is appended to the in-memory
  // replication log, which the sender drains to the backup. In ack
  // mode the sink also blocks (bounded) until the backup acknowledged
  // the record — but only once the sender is running, so boot-time
  // commits (queue provisioning, recovery side effects) don't stall
  // against a backup that isn't connected yet. An unreachable backup
  // must not throttle the primary to one commit per ack timeout
  // either: after kAckDegradeAfter consecutive timeouts the gate
  // degrades to async (the conventional semi-sync escape), and
  // re-engages once the sender reports shipping again.
  repl::ReplicationLog repl_log;
  std::atomic<bool> ack_gate{false};
  std::atomic<uint32_t> ack_misses{0};
  constexpr uint64_t kAckTimeoutMicros = 5'000'000;
  constexpr uint32_t kAckDegradeAfter = 2;
  std::unique_ptr<repl::ReplicationSender> sender;  // Created below.

  queue::RepositoryOptions repo_options;
  repo_options.env = env;
  repo_options.dir = dir + "/qm";
  repo_options.shards = static_cast<unsigned>(shards);
  repo_options.in_doubt_resolver = [&txn_mgr](txn::TxnId id) {
    return txn_mgr.WasCommitted(id);
  };
  if (is_primary) {
    repo_options.replication_sink = [&repl_log, &ack_gate, &ack_misses,
                                     &sender, repl_ack](const Slice& record) {
      const uint64_t seq = repl_log.Append(record.ToString());
      if (!repl_ack || !ack_gate.load(std::memory_order_acquire)) {
        return Status::OK();
      }
      if (ack_misses.load(std::memory_order_acquire) >= kAckDegradeAfter) {
        if (sender == nullptr || sender->state().state != "shipping") {
          return Status::OK();  // Degraded: backup still unreachable.
        }
        ack_misses.store(0, std::memory_order_release);
      }
      Status s = repl_log.WaitAcked(seq, kAckTimeoutMicros);
      if (s.IsUnavailable()) {
        ack_misses.fetch_add(1, std::memory_order_acq_rel);
      } else if (s.ok()) {
        ack_misses.store(0, std::memory_order_release);
      }
      return s;
    };
  }
  queue::QueueRepository repo("qm", repo_options);
  if (Status s = repo.Open(); !s.ok()) {
    std::fprintf(stderr, "rrqd: repository: %s\n", s.ToString().c_str());
    return 1;
  }
  // A backup must stay empty until the primary seeds it (the applier
  // refuses to adopt a stream into a non-empty repository), so its
  // queues are only provisioned at promotion — and usually arrive
  // from the primary's snapshot anyway.
  auto provision_queues = [&]() -> Status {
    if (Status s = repo.CreateQueue(request_queue);
        !s.ok() && !s.IsAlreadyExists()) {
      return s;
    }
    if (!audit_queue.empty()) {
      if (Status s = repo.CreateQueue(audit_queue);
          !s.ok() && !s.IsAlreadyExists()) {
        return s;
      }
    }
    return Status::OK();
  };
  if (!is_backup) {
    if (Status s = provision_queues(); !s.ok()) {
      std::fprintf(stderr, "rrqd: create queue: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  storage::KvStoreOptions db_options;
  db_options.env = env;
  db_options.dir = dir + "/db";
  db_options.in_doubt_resolver = [&txn_mgr](txn::TxnId id) {
    return txn_mgr.WasCommitted(id);
  };
  storage::KvStore db("db", db_options);
  if (Status s = db.Open(); !s.ok()) {
    std::fprintf(stderr, "rrqd: kv store: %s\n", s.ToString().c_str());
    return 1;
  }

  // The demo back end: count executions per rid, transactionally with
  // the dequeue/reply, so every request's execution count is exactly
  // the number of committed server transactions that processed it.
  // With --audit-queue, each execution also enqueues an audit record
  // in the same transaction — and since queue state (unlike the
  // KvStore) is what replication ships, the audit queue is the
  // durable cross-failover record of what ran.
  std::unique_ptr<server::Server> server;
  auto start_server = [&]() -> Status {
    server::ServerOptions server_options;
    server_options.name = "rrqd-server";
    server_options.request_queue = request_queue;
    server_options.threads = threads;
    server = std::make_unique<server::Server>(
        server_options, &repo, &txn_mgr,
        [&db, &repo, audit_queue](
            txn::Transaction* t,
            const queue::RequestEnvelope& request) -> Result<std::string> {
          const std::string key = "exec/" + request.rid;
          uint64_t count = 0;
          auto prior = db.GetForUpdate(t, key);
          if (prior.ok()) {
            count = std::strtoull(prior->c_str(), nullptr, 10);
          } else if (!prior.status().IsNotFound()) {
            return prior.status();
          }
          ++count;
          RRQ_RETURN_IF_ERROR(db.Put(t, key, std::to_string(count)));
          const std::string done =
              "done:" + request.rid + ":" + std::to_string(count);
          if (!audit_queue.empty()) {
            auto eid = repo.Enqueue(t, audit_queue,
                                    Slice("exec:" + request.rid + ":" +
                                          std::to_string(count)));
            if (!eid.ok()) return eid.status();
          }
          return done;
        });
    return server->Start();
  };
  // A backup's server starts at promotion instead: until then the
  // replicated request queue must only be consumed by the primary.
  if (run_server && !is_backup) {
    if (Status s = start_server(); !s.ok()) {
      std::fprintf(stderr, "rrqd: server: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Backup role: the applier serves the replication protocol on its
  // own listener and client writes are gated off until promotion.
  repl::ReplicaApplierOptions applier_options;
  applier_options.env = env;
  applier_options.dir = dir;  // REPL_STREAM beside txn/qm/db.
  applier_options.repo = &repo;
  repl::ReplicaApplier applier(applier_options);
  std::unique_ptr<net::TcpServer> repl_server;
  if (is_backup) {
    if (Status s = applier.Open(); !s.ok()) {
      std::fprintf(stderr, "rrqd: applier: %s\n", s.ToString().c_str());
      return 1;
    }
    net::TcpServerOptions repl_tcp_options;
    repl_tcp_options.bind_address = host;
    repl_tcp_options.port = static_cast<uint16_t>(repl_port);
    repl_tcp_options.backend = net_backend;
    repl_server = std::make_unique<net::TcpServer>(
        repl_tcp_options,
        [&applier](const Slice& request, std::string* reply) {
          return applier.Handle(request, reply);
        });
    if (Status s = repl_server->Start(); !s.ok()) {
      std::fprintf(stderr, "rrqd: repl listen: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  net::QueueServiceDispatcher dispatcher(&repo);
  if (is_backup) {
    dispatcher.set_write_gate([&applier]() {
      if (applier.promoted()) return Status::OK();
      return Status::FailedPrecondition(
          "backup refuses writes until promoted");
    });
    // Promotion: seal the applier against the dead primary's stream,
    // provision any queues the seed never carried, and bring up the
    // demo server over the replicated request queue. Serialized +
    // idempotent — concurrent Promote ops from racing operators must
    // not double-start the server.
    static Mutex promote_mu;
    static bool promote_done = false;
    dispatcher.set_promote_fn([&]() -> Status {
      MutexLock lock(promote_mu);
      if (promote_done) return Status::OK();
      const uint64_t cut = applier.Promote();
      RRQ_RETURN_IF_ERROR(provision_queues());
      if (run_server) RRQ_RETURN_IF_ERROR(start_server());
      promote_done = true;
      std::printf("rrqd: promoted at seq %llu\n",
                  static_cast<unsigned long long>(cut));
      std::fflush(stdout);
      return Status::OK();
    });
    dispatcher.set_replication_status_fn([&applier]() {
      net::ReplStatusInfo info;
      info.role = "backup";
      info.promoted = applier.promoted();
      info.state = info.promoted ? "promoted" : "applying";
      info.stream_id = applier.stream_id();
      info.acked_seq = applier.applied_seq();
      info.head_seq = info.acked_seq;
      return info;
    });
  }

  // Primary role: per-boot random stream identity (a restarted
  // primary is a new stream — its in-memory log restarts at 1, so the
  // backup must be reseeded rather than silently double-applied).
  if (is_primary) {
    util::Rng rng(static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch().count()) ^
                  (static_cast<uint64_t>(getpid()) << 32));
    uint64_t stream_id = 0;
    while (stream_id == 0) stream_id = rng.Next();
    repl::ReplicationSenderOptions sender_options;
    sender_options.host = backup_host;
    sender_options.port = backup_port;
    sender_options.stream_id = stream_id;
    sender = std::make_unique<repl::ReplicationSender>(sender_options,
                                                       &repl_log, &repo);
    if (Status s = sender->Start(); !s.ok()) {
      std::fprintf(stderr, "rrqd: sender: %s\n", s.ToString().c_str());
      return 1;
    }
    ack_gate.store(true, std::memory_order_release);
    dispatcher.set_replication_status_fn([&sender]() {
      const repl::ReplicationState st = sender->state();
      net::ReplStatusInfo info;
      info.role = "primary";
      info.state = st.state;
      info.stream_id = st.stream_id;
      info.acked_seq = st.acked_seq;
      info.head_seq = st.head_seq;
      info.reconnects = st.reconnects;
      info.last_error = st.last_error;
      return info;
    });
  }

  net::TcpServerOptions tcp_options;
  tcp_options.bind_address = host;
  tcp_options.port = static_cast<uint16_t>(port);
  tcp_options.workers = workers;
  tcp_options.backend = net_backend;
  net::TcpServer tcp(tcp_options,
                     [&dispatcher](const Slice& request, std::string* reply) {
                       return dispatcher.Handle(request, reply);
                     });
  tcp.set_blocking_hint(
      [](const Slice& request) { return net::QueueRequestMayBlock(request); });
  if (Status s = tcp.Start(); !s.ok()) {
    std::fprintf(stderr, "rrqd: listen: %s\n", s.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("rrqd: listening on %s:%u (pid %d)\n", host.c_str(),
              static_cast<unsigned>(tcp.port()), static_cast<int>(getpid()));
  if (repl_server != nullptr) {
    std::printf("rrqd: repl listening on %s:%u\n", host.c_str(),
                static_cast<unsigned>(repl_server->port()));
  }
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("rrqd: shutting down\n");
  std::fflush(stdout);
  if (sender != nullptr) sender->Stop();
  repl_log.Shutdown();
  tcp.Stop();
  if (repl_server != nullptr) repl_server->Stop();
  if (server != nullptr) server->Stop();
  return 0;
}
