#include "net/queue_wire.h"

#include "net/frame.h"
#include "util/coding.h"

namespace rrq::net {

void EncodeElement(const queue::Element& e, std::string* out) {
  util::PutFixed64(out, e.eid);
  util::PutVarint32(out, e.priority);
  util::PutVarint32(out, e.abort_count);
  util::PutLengthPrefixed(out, e.abort_code);
  util::PutLengthPrefixed(out, e.contents);
}

Status DecodeElement(Slice* input, queue::Element* e) {
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &e->eid));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->priority));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->abort_count));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->abort_code));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->contents));
  return Status::OK();
}

void EncodeQueueOptions(const queue::QueueOptions& options, std::string* out) {
  util::PutVarint32(out, options.max_aborts);
  util::PutLengthPrefixed(out, options.error_queue);
  out->push_back(options.durable ? 1 : 0);
  out->push_back(static_cast<char>(options.policy));
  util::PutVarint64(out, options.alert_threshold);
  util::PutLengthPrefixed(out, options.redirect_to);
}

Status DecodeQueueOptions(Slice* input, queue::QueueOptions* options) {
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &options->max_aborts));
  RRQ_RETURN_IF_ERROR(
      util::GetLengthPrefixedString(input, &options->error_queue));
  if (input->size() < 2) return Status::Corruption("truncated queue options");
  options->durable = (*input)[0] != 0;
  const unsigned char policy = static_cast<unsigned char>((*input)[1]);
  if (policy > static_cast<unsigned char>(queue::DequeuePolicy::kStrictFifo)) {
    return Status::Corruption("invalid dequeue policy byte");
  }
  options->policy = static_cast<queue::DequeuePolicy>(policy);
  input->remove_prefix(2);
  uint64_t alert = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(input, &alert));
  options->alert_threshold = static_cast<size_t>(alert);
  RRQ_RETURN_IF_ERROR(
      util::GetLengthPrefixedString(input, &options->redirect_to));
  return Status::OK();
}

void EncodeReplStatusInfo(const ReplStatusInfo& info, std::string* out) {
  util::PutLengthPrefixed(out, info.role);
  util::PutLengthPrefixed(out, info.state);
  util::PutFixed64(out, info.stream_id);
  util::PutFixed64(out, info.acked_seq);
  util::PutFixed64(out, info.head_seq);
  util::PutFixed64(out, info.reconnects);
  out->push_back(info.promoted ? 1 : 0);
  util::PutLengthPrefixed(out, info.last_error);
}

Status DecodeReplStatusInfo(Slice* input, ReplStatusInfo* info) {
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &info->role));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &info->state));
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &info->stream_id));
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &info->acked_seq));
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &info->head_seq));
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &info->reconnects));
  if (input->empty()) return Status::Corruption("truncated repl status");
  info->promoted = (*input)[0] != 0;
  input->remove_prefix(1);
  return util::GetLengthPrefixedString(input, &info->last_error);
}

bool QueueRequestMayBlock(const Slice& request) {
  Slice input = request;
  if (input.empty() ||
      static_cast<unsigned char>(input[0]) != kOpDequeue) {
    return false;
  }
  input.remove_prefix(1);
  std::string queue, registrant, tag;
  uint64_t timeout = 0;
  if (!util::GetLengthPrefixedString(&input, &queue).ok() ||
      !util::GetLengthPrefixedString(&input, &registrant).ok() ||
      !util::GetLengthPrefixedString(&input, &tag).ok() ||
      !util::GetFixed64(&input, &timeout).ok()) {
    return false;
  }
  return timeout > 0;
}

// ---------------------------------------------------------------------------
// QueueServiceDispatcher

Status QueueServiceDispatcher::Handle(const Slice& request,
                                      std::string* reply) {
  Slice input = request;
  if (input.empty()) return Status::InvalidArgument("empty request");
  const unsigned char op = static_cast<unsigned char>(input[0]);
  input.remove_prefix(1);

  std::string queue;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &queue));

  // An unpromoted backup refuses mutations but keeps serving reads
  // and admin ops, so clerks probing a not-yet-promoted daemon get a
  // clean verdict instead of divergent state.
  if (write_gate_) {
    switch (op) {
      case kOpRegister:
      case kOpDeregister:
      case kOpEnqueue:
      case kOpDequeue:
      case kOpKill:
      case kOpCreateQueue: {
        Status gate = write_gate_();
        if (!gate.ok()) {
          EncodeStatus(gate, reply);
          return Status::OK();
        }
        break;
      }
      default:
        break;
    }
  }

  switch (op) {
    case kOpRegister: {
      std::string registrant;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      if (input.empty()) return Status::Corruption("truncated register");
      const bool stable = input[0] != 0;
      auto r = repo_->Register(queue, registrant, stable);
      EncodeStatus(r.status(), reply);
      if (r.ok()) {
        reply->push_back(r->was_registered ? 1 : 0);
        reply->push_back(static_cast<char>(r->last_op));
        util::PutFixed64(reply, r->last_eid);
        util::PutLengthPrefixed(reply, r->last_tag);
        util::PutLengthPrefixed(reply, r->last_element);
      }
      return Status::OK();
    }
    case kOpDeregister: {
      std::string registrant;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      EncodeStatus(repo_->Deregister(queue, registrant), reply);
      return Status::OK();
    }
    case kOpEnqueue: {
      std::string contents, registrant, tag;
      uint32_t priority = 0;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &contents));
      RRQ_RETURN_IF_ERROR(util::GetVarint32(&input, &priority));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &tag));
      auto r = repo_->Enqueue(nullptr, queue, contents, priority, registrant,
                              tag);
      EncodeStatus(r.status(), reply);
      if (r.ok()) util::PutFixed64(reply, *r);
      return Status::OK();
    }
    case kOpDequeue: {
      std::string registrant, tag;
      uint64_t timeout = 0;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &tag));
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &timeout));
      auto r = repo_->Dequeue(nullptr, queue, registrant, tag, timeout);
      EncodeStatus(r.status(), reply);
      if (r.ok()) EncodeElement(*r, reply);
      return Status::OK();
    }
    case kOpRead: {
      uint64_t eid = 0;
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid));
      auto r = repo_->Read(queue, eid);
      EncodeStatus(r.status(), reply);
      if (r.ok()) EncodeElement(*r, reply);
      return Status::OK();
    }
    case kOpKill: {
      uint64_t eid = 0;
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid));
      auto r = repo_->KillElement(nullptr, queue, eid);
      EncodeStatus(r.status(), reply);
      if (r.ok()) reply->push_back(*r ? 1 : 0);
      return Status::OK();
    }
    case kOpCreateQueue: {
      queue::QueueOptions options;
      RRQ_RETURN_IF_ERROR(DecodeQueueOptions(&input, &options));
      EncodeStatus(repo_->CreateQueue(queue, options), reply);
      return Status::OK();
    }
    case kOpDepth: {
      auto r = repo_->Depth(queue);
      EncodeStatus(r.status(), reply);
      if (r.ok()) util::PutFixed64(reply, *r);
      return Status::OK();
    }
    case kOpReplStatus: {
      ReplStatusInfo info;
      if (repl_status_fn_) {
        info = repl_status_fn_();
      } else {
        info.role = "standalone";
        info.state = "none";
      }
      EncodeStatus(Status::OK(), reply);
      EncodeReplStatusInfo(info, reply);
      return Status::OK();
    }
    case kOpPromote: {
      Status s = promote_fn_
                     ? promote_fn_()
                     : Status::FailedPrecondition("daemon is not a backup");
      EncodeStatus(s, reply);
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unknown queue-service op");
  }
}

// ---------------------------------------------------------------------------
// ChannelQueueApi

namespace {

// CallOptions for a Dequeue carrying `timeout_micros` of server-side
// wait: the transport must outlast the server's park plus transit
// (saturating; a 0 timeout keeps the channel default).
CallOptions DequeueCallOptions(uint64_t timeout_micros) {
  CallOptions options;
  if (timeout_micros > 0) {
    options.min_deadline_micros =
        timeout_micros > UINT64_MAX - kBlockingCallMarginMicros
            ? UINT64_MAX
            : timeout_micros + kBlockingCallMarginMicros;
  }
  return options;
}

}  // namespace

Status ChannelQueueApi::CallService(const std::string& request,
                                    std::string* payload,
                                    const CallOptions& options) {
  std::string reply;
  RRQ_RETURN_IF_ERROR(channel_->Call(request, &reply, options));
  Slice input(reply);
  Status s = DecodeStatus(&input);
  if (!s.ok()) return s;
  payload->assign(input.data(), input.size());
  return Status::OK();
}

Result<queue::RegistrationInfo> ChannelQueueApi::Register(
    const std::string& queue, const std::string& registrant, bool stable) {
  std::string request;
  request.push_back(static_cast<char>(kOpRegister));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, registrant);
  request.push_back(stable ? 1 : 0);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  if (input.size() < 2) return Status::Corruption("truncated register reply");
  queue::RegistrationInfo info;
  info.was_registered = input[0] != 0;
  const unsigned char op = static_cast<unsigned char>(input[1]);
  if (op > static_cast<unsigned char>(queue::OpType::kDequeue)) {
    return Status::Corruption("invalid op-type byte in register reply");
  }
  info.last_op = static_cast<queue::OpType>(op);
  input.remove_prefix(2);
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &info.last_eid));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &info.last_tag));
  RRQ_RETURN_IF_ERROR(
      util::GetLengthPrefixedString(&input, &info.last_element));
  return info;
}

Status ChannelQueueApi::Deregister(const std::string& queue,
                                   const std::string& registrant) {
  std::string request;
  request.push_back(static_cast<char>(kOpDeregister));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, registrant);
  std::string payload;
  return CallService(request, &payload);
}

Result<queue::ElementId> ChannelQueueApi::Enqueue(
    const std::string& queue, const Slice& contents, uint32_t priority,
    const std::string& registrant, const Slice& tag, bool one_way) {
  std::string request;
  request.push_back(static_cast<char>(kOpEnqueue));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, contents);
  util::PutVarint32(&request, priority);
  util::PutLengthPrefixed(&request, registrant);
  util::PutLengthPrefixed(&request, tag);
  if (one_way) {
    // Fire-and-forget (§5): one message, no eid back, no failure signal.
    RRQ_RETURN_IF_ERROR(channel_->SendOneWay(request));
    return queue::kInvalidElementId;
  }
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  uint64_t eid = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid));
  return eid;
}

Result<queue::Element> ChannelQueueApi::Dequeue(const std::string& queue,
                                                const std::string& registrant,
                                                const Slice& tag,
                                                uint64_t timeout_micros) {
  std::string request;
  request.push_back(static_cast<char>(kOpDequeue));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, registrant);
  util::PutLengthPrefixed(&request, tag);
  util::PutFixed64(&request, timeout_micros);
  std::string payload;
  // A blocking dequeue's deadline must cover the server's full wait
  // bound, not the channel default (see kBlockingCallMarginMicros).
  RRQ_RETURN_IF_ERROR(
      CallService(request, &payload, DequeueCallOptions(timeout_micros)));
  Slice input(payload);
  queue::Element element;
  RRQ_RETURN_IF_ERROR(DecodeElement(&input, &element));
  return element;
}

void ChannelQueueApi::EnqueueAsync(
    const std::string& queue, const Slice& contents, uint32_t priority,
    const std::string& registrant, const Slice& tag, bool one_way,
    std::function<void(Result<queue::ElementId>)> done) {
  std::string request;
  request.push_back(static_cast<char>(kOpEnqueue));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, contents);
  util::PutVarint32(&request, priority);
  util::PutLengthPrefixed(&request, registrant);
  util::PutLengthPrefixed(&request, tag);
  if (one_way) {
    // Fire-and-forget (§5): nothing to wait for, complete inline.
    Status s = channel_->SendOneWay(request);
    if (!s.ok()) {
      done(std::move(s));
      return;
    }
    done(queue::ElementId{queue::kInvalidElementId});
    return;
  }
  channel_->CallAsync(
      request, [done = std::move(done)](Status s, std::string reply) {
        if (!s.ok()) {
          done(std::move(s));
          return;
        }
        Slice input(reply);
        Status service = DecodeStatus(&input);
        if (!service.ok()) {
          done(std::move(service));
          return;
        }
        uint64_t eid = 0;
        Status parsed = util::GetFixed64(&input, &eid);
        if (!parsed.ok()) {
          done(std::move(parsed));
          return;
        }
        done(queue::ElementId{eid});
      });
}

void ChannelQueueApi::DequeueAsync(
    const std::string& queue, const std::string& registrant, const Slice& tag,
    uint64_t timeout_micros, std::function<void(Result<queue::Element>)> done) {
  std::string request;
  request.push_back(static_cast<char>(kOpDequeue));
  util::PutLengthPrefixed(&request, queue);
  util::PutLengthPrefixed(&request, registrant);
  util::PutLengthPrefixed(&request, tag);
  util::PutFixed64(&request, timeout_micros);
  channel_->CallAsync(
      request, DequeueCallOptions(timeout_micros),
      [done = std::move(done)](Status s, std::string reply) {
        if (!s.ok()) {
          done(std::move(s));
          return;
        }
        Slice input(reply);
        Status service = DecodeStatus(&input);
        if (!service.ok()) {
          done(std::move(service));
          return;
        }
        queue::Element element;
        Status parsed = DecodeElement(&input, &element);
        if (!parsed.ok()) {
          done(std::move(parsed));
          return;
        }
        done(std::move(element));
      });
}

Result<queue::Element> ChannelQueueApi::Read(const std::string& queue,
                                             queue::ElementId eid) {
  std::string request;
  request.push_back(static_cast<char>(kOpRead));
  util::PutLengthPrefixed(&request, queue);
  util::PutFixed64(&request, eid);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  queue::Element element;
  RRQ_RETURN_IF_ERROR(DecodeElement(&input, &element));
  return element;
}

Result<bool> ChannelQueueApi::KillElement(const std::string& queue,
                                          queue::ElementId eid) {
  std::string request;
  request.push_back(static_cast<char>(kOpKill));
  util::PutLengthPrefixed(&request, queue);
  util::PutFixed64(&request, eid);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  if (payload.empty()) return Status::Corruption("truncated kill reply");
  return payload[0] != 0;
}

Status ChannelQueueApi::CreateQueue(const std::string& queue,
                                    const queue::QueueOptions& options) {
  std::string request;
  request.push_back(static_cast<char>(kOpCreateQueue));
  util::PutLengthPrefixed(&request, queue);
  EncodeQueueOptions(options, &request);
  std::string payload;
  return CallService(request, &payload);
}

Result<size_t> ChannelQueueApi::Depth(const std::string& queue) {
  std::string request;
  request.push_back(static_cast<char>(kOpDepth));
  util::PutLengthPrefixed(&request, queue);
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  uint64_t depth = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &depth));
  return static_cast<size_t>(depth);
}

Result<ReplStatusInfo> ChannelQueueApi::ReplicationStatus() {
  std::string request;
  request.push_back(static_cast<char>(kOpReplStatus));
  util::PutLengthPrefixed(&request, "");
  std::string payload;
  RRQ_RETURN_IF_ERROR(CallService(request, &payload));
  Slice input(payload);
  ReplStatusInfo info;
  RRQ_RETURN_IF_ERROR(DecodeReplStatusInfo(&input, &info));
  return info;
}

Status ChannelQueueApi::Promote() {
  std::string request;
  request.push_back(static_cast<char>(kOpPromote));
  util::PutLengthPrefixed(&request, "");
  std::string payload;
  return CallService(request, &payload);
}

}  // namespace rrq::net
