#include "net/io_backend.h"

#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>

#include "util/logging.h"

namespace rrq::net {

const char* IoBackendName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kAuto:
      return "auto";
    case IoBackendKind::kEpoll:
      return "epoll";
    case IoBackendKind::kUring:
      return "uring";
  }
  return "unknown";
}

bool ParseIoBackend(const std::string& text, IoBackendKind* out) {
  if (text == "auto") {
    *out = IoBackendKind::kAuto;
  } else if (text == "epoll") {
    *out = IoBackendKind::kEpoll;
  } else if (text == "uring" || text == "io_uring") {
    *out = IoBackendKind::kUring;
  } else {
    return false;
  }
  return true;
}

IoBackendKind ResolveIoBackend(IoBackendKind requested, std::string* note) {
  if (note) note->clear();
  if (requested == IoBackendKind::kEpoll) return IoBackendKind::kEpoll;
  std::string reason;
  const bool available = UringAvailable(&reason);
  if (available) return IoBackendKind::kUring;
  if (note) {
    *note = (requested == IoBackendKind::kAuto)
                ? "io_uring unavailable, using epoll: " + reason
                : "io_uring requested but unavailable: " + reason;
  }
  // kUring stays kUring so the caller can fail hard; kAuto degrades.
  return requested == IoBackendKind::kAuto ? IoBackendKind::kEpoll
                                           : IoBackendKind::kUring;
}

IoLoopStats SnapshotIoCounters(const char* backend, const IoCounters& c) {
  IoLoopStats s;
  s.backend = backend;
  s.waits = c.waits.load(std::memory_order_relaxed);
  s.recvs = c.recvs.load(std::memory_order_relaxed);
  s.sends = c.sends.load(std::memory_order_relaxed);
  s.enters = c.enters.load(std::memory_order_relaxed);
  s.sqes = c.sqes.load(std::memory_order_relaxed);
  s.sqe_batches = c.sqe_batches.load(std::memory_order_relaxed);
  s.cqes = c.cqes.load(std::memory_order_relaxed);
  return s;
}

void FlushOutboxLocked(ServerConn* conn, IoCounters* counters) {
  while (!conn->outbox.empty()) {
    iovec iov[64];
    int cnt = 0;
    for (const auto& b : conn->outbox) {
      const size_t off = (cnt == 0) ? conn->head_off : 0;
      iov[cnt].iov_base = const_cast<char*>(b.data()) + off;
      iov[cnt].iov_len = b.size() - off;
      if (++cnt == 64) break;
    }
    const ssize_t n = writev(conn->fd, iov, cnt);
    if (counters) counters->sends.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn->want_write = true;
        return;
      }
      conn->write_failed = true;  // Peer gone; the loop reaps us.
      return;
    }
    size_t left = static_cast<size_t>(n);
    while (left > 0) {
      const size_t avail = conn->outbox.front().size() - conn->head_off;
      if (left >= avail) {
        left -= avail;
        conn->outbox.pop_front();
        conn->head_off = 0;
      } else {
        conn->head_off += left;
        left = 0;
      }
    }
  }
}

std::unique_ptr<ServerIoBackend> CreateServerIoBackend(IoBackendKind kind,
                                                       IoCounters* counters) {
  if (kind == IoBackendKind::kUring) {
    std::string reason;
    auto backend = CreateUringServerBackend(counters, &reason);
    if (backend) return backend;
    // The probe said yes but ring setup failed now (e.g. RLIMIT_MEMLOCK
    // pressure). Auto-mode callers resolved kAuto before calling us, so
    // degrade here too rather than dying mid-start.
    RRQ_LOG(kWarn) << "io_uring backend setup failed (" << reason
                   << "); falling back to epoll";
  }
  return CreateEpollServerBackend(counters);
}

}  // namespace rrq::net
