#ifndef RRQ_NET_SOCKET_UTIL_H_
#define RRQ_NET_SOCKET_UTIL_H_

// Internal socket helpers shared by the TcpChannel and TcpServer
// implementations. Not part of the public net/ surface.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/status.h"

namespace rrq::net::internal {

inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

inline Status MakeAddr(const std::string& host, uint16_t port,
                       sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

inline void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

inline void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Waits until `fd` is ready for `events` or `deadline_micros` (steady
// clock) passes. OK / TimedOut / IOError. Deadlines far in the future
// (up to UINT64_MAX = effectively unbounded) are handled by polling in
// bounded slices, so the int timeout handed to poll() never overflows.
inline Status PollFd(int fd, short events, uint64_t deadline_micros) {
  while (true) {
    const uint64_t now = NowMicros();
    if (now >= deadline_micros) return Status::TimedOut("poll deadline");
    pollfd pfd{fd, events, 0};
    const uint64_t remaining_ms = (deadline_micros - now + 999) / 1000;
    const int timeout_ms =
        static_cast<int>(remaining_ms < 60'000 ? remaining_ms : 60'000);
    const int n = poll(&pfd, 1, timeout_ms);
    if (n > 0) return Status::OK();
    if (n == 0) continue;  // Slice expired; the deadline check decides.
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace rrq::net::internal

#endif  // RRQ_NET_SOCKET_UTIL_H_
