#ifndef RRQ_STORAGE_KV_STORE_H_
#define RRQ_STORAGE_KV_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "env/env.h"
#include "txn/resource_manager.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "wal/log_writer.h"

namespace rrq::storage {

/// Options for KvStore.
struct KvStoreOptions {
  /// Environment for durable state. nullptr makes the store volatile
  /// (no WAL, no recovery) — useful for baselines and benchmarks.
  env::Env* env = nullptr;
  /// Directory for WAL / checkpoint / CURRENT files.
  std::string dir;
  /// Sync the commit record before acknowledging commit. Turning this
  /// off trades the durability of the last few transactions for speed.
  bool sync_commits = true;
  /// Batch WAL syncs across concurrent committers (leader/follower
  /// group commit). Disable for the per-operation-sync baseline.
  bool group_commit = true;
  /// Resolves in-doubt transactions found during recovery (prepared
  /// but neither committed nor aborted). Defaults to presumed abort.
  /// Wire this to TransactionManager::WasCommitted for 2PC.
  std::function<bool(txn::TxnId)> in_doubt_resolver;
  /// Prefix namespacing this store's keys in the shared lock manager.
  /// Defaults to `dir` (or "kv" when dir is empty).
  std::string lock_prefix;
  /// Bound on every lock wait inside Get/Put/Delete. Waiters past the
  /// bound fail with TimedOut (deadlock victims fail sooner, with
  /// Aborted).
  uint64_t lock_timeout_micros = 10'000'000;
};

/// A recoverable, transactional key-value store: the "shared updatable
/// database" the paper's back-end servers operate on, and the
/// substrate for the §6 application-lock table.
///
/// Design: main-memory std::map of committed state; per-transaction
/// deferred write sets; strict 2PL via the enclosing transaction's
/// lock manager; redo-only WAL (prepare record carries the write set,
/// commit record makes it applicable); fuzzy checkpoint that snapshots
/// committed state and re-logs in-flight prepares into a fresh WAL.
///
/// Thread-safe.
class KvStore final : public txn::ResourceManager {
 public:
  explicit KvStore(std::string name, KvStoreOptions options = {});
  ~KvStore() override;

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Recovers durable state (checkpoint + WAL replay). Must be called
  /// once before use.
  Status Open();

  // ---- Transactional operations -------------------------------------
  // Each auto-enlists this store in *t* and acquires the appropriate
  // two-phase lock. Writes are deferred to commit; reads see the
  // transaction's own writes.

  Status Put(txn::Transaction* t, const Slice& key, const Slice& value);
  Status Delete(txn::Transaction* t, const Slice& key);

  /// Shared-locked read. NotFound when absent (or deleted by *t*).
  Result<std::string> Get(txn::Transaction* t, const Slice& key);

  /// Exclusive-locked read (read-for-update), avoiding S->X upgrade
  /// deadlocks in read-modify-write transactions.
  Result<std::string> GetForUpdate(txn::Transaction* t, const Slice& key);

  // ---- Non-transactional reads (read committed, no locks) -----------

  Result<std::string> GetCommitted(const Slice& key) const;
  std::vector<std::string> ScanKeys(const std::string& prefix) const;
  size_t size() const;

  /// Writes a checkpoint and truncates the WAL.
  Status Checkpoint();

  // ---- txn::ResourceManager ------------------------------------------
  std::string_view rm_name() const override { return name_; }
  Status Prepare(txn::TxnId txn) override;
  Status CommitTxn(txn::TxnId txn) override;
  void AbortTxn(txn::TxnId txn) override;
  Status PrepareAndCommit(txn::TxnId txn) override;

  // ---- Introspection ---------------------------------------------------
  uint64_t wal_bytes() const;
  /// Physical WAL syncs vs durability requests; the ratio is the
  /// group-commit batching factor.
  uint64_t wal_sync_count() const;
  uint64_t wal_sync_request_count() const;
  uint64_t checkpoint_count() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  uint64_t recovered_txn_count() const {
    MutexLock guard(mu_);
    return recovered_txns_;
  }
  /// Failed RemoveFile calls on the retirement/GC path (checkpoint
  /// retiring the previous generation, recovery GC). Nonzero means
  /// orphan files may be accumulating; the crash sweep asserts on it.
  uint64_t remove_failure_count() const {
    return remove_failures_.load(std::memory_order_relaxed);
  }
  /// Orphan files (stale generations, stray .tmp) deleted by Open().
  uint64_t recovery_gc_removed_count() const {
    return gc_removed_.load(std::memory_order_relaxed);
  }

 private:
  struct WriteOp {
    std::string key;
    std::optional<std::string> value;  // nullopt = delete
  };
  using WriteSet = std::vector<WriteOp>;

  std::string LockKey(const Slice& key) const;
  // Serialization of WAL records.
  static void EncodeWriteSet(txn::TxnId id, const WriteSet& ws,
                             unsigned char type, std::string* out);
  Status LogAndMaybeSync(const std::string& record, bool sync);
  // Applies a write set to committed state.
  void ApplyLocked(const WriteSet& ws) REQUIRES(mu_);
  void RemoveRetiredFile(const std::string& path);
  // Recovery steps, called from Open() which holds mu_ for the whole
  // durable path.
  Status OpenWalForAppend(uint64_t generation) REQUIRES(mu_);
  Status LoadCheckpoint(uint64_t generation) REQUIRES(mu_);
  Status ReplayWal(uint64_t generation) REQUIRES(mu_);
  std::string WalPath(uint64_t generation) const;
  std::string CheckpointPath(uint64_t generation) const;
  std::string CurrentPath() const;

  const std::string name_;
  KvStoreOptions options_;
  bool opened_ = false;

  mutable Mutex mu_;
  // Committed state.
  std::map<std::string, std::string> data_ GUARDED_BY(mu_);
  // Active write sets.
  std::unordered_map<txn::TxnId, WriteSet> pending_ GUARDED_BY(mu_);
  // Voted yes.
  std::unordered_map<txn::TxnId, WriteSet> prepared_ GUARDED_BY(mu_);
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  // Swapped by Checkpoint(); committers snapshot the shared_ptr under
  // mu_ and append outside it (LogWriter is internally synchronized;
  // the shared_ptr keeps the retired writer alive until the last
  // in-flight appender drops it).
  std::shared_ptr<wal::LogWriter> wal_ GUARDED_BY(mu_);
  uint64_t recovered_txns_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> remove_failures_{0};
  std::atomic<uint64_t> gc_removed_{0};
};

}  // namespace rrq::storage

#endif  // RRQ_STORAGE_KV_STORE_H_
