#include "storage/kv_store.h"

#include <algorithm>

#include "env/gc.h"
#include "util/coding.h"
#include "util/logging.h"
#include "wal/log_reader.h"

namespace rrq::storage {

namespace {

// WAL record types.
constexpr unsigned char kRecPrepare = 1;
constexpr unsigned char kRecCommit = 2;
// Fused 1PC record: write set that is committed the moment the record
// is durable.
constexpr unsigned char kRecCommitted = 3;

// Write-op tags inside a prepare/committed record.
constexpr unsigned char kOpPut = 1;
constexpr unsigned char kOpDelete = 2;

}  // namespace

KvStore::KvStore(std::string name, KvStoreOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (options_.lock_prefix.empty()) {
    options_.lock_prefix = options_.dir.empty() ? "kv:" + name_ : options_.dir;
  }
}

KvStore::~KvStore() = default;

std::string KvStore::LockKey(const Slice& key) const {
  return options_.lock_prefix + "\x1f" + key.ToString();
}

std::string KvStore::WalPath(uint64_t generation) const {
  return options_.dir + "/WAL-" + std::to_string(generation);
}
std::string KvStore::CheckpointPath(uint64_t generation) const {
  return options_.dir + "/CHECKPOINT-" + std::to_string(generation);
}
std::string KvStore::CurrentPath() const { return options_.dir + "/CURRENT"; }

Status KvStore::Open() {
  if (opened_) return Status::FailedPrecondition("KvStore already open");
  if (options_.env == nullptr) {
    opened_ = true;
    return Status::OK();
  }
  env::Env* env = options_.env;
  RRQ_RETURN_IF_ERROR(env->CreateDirIfMissing(options_.dir));
  // Recovery mutates every guarded field; hold mu_ for the whole
  // durable path (Open runs before any concurrent use anyway).
  MutexLock guard(mu_);

  if (env->FileExists(CurrentPath())) {
    std::string current;
    RRQ_RETURN_IF_ERROR(env::ReadFileToString(env, CurrentPath(), &current));
    Slice input(current);
    uint64_t generation = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &generation));
    generation_ = generation;
  }
  // A crash inside Checkpoint() can strand the previous generation's
  // WAL/checkpoint (crash between the CURRENT switch and the retire),
  // a freshly written next generation (crash before the CURRENT
  // switch), or a half-written *.tmp. Sweep them before recovery
  // creates any files of its own.
  {
    env::GcStats gc;
    RRQ_RETURN_IF_ERROR(
        env::RetireStaleGenerations(env, options_.dir, generation_, &gc));
    gc_removed_.fetch_add(gc.removed, std::memory_order_relaxed);
    remove_failures_.fetch_add(gc.failures, std::memory_order_relaxed);
  }
  if (env->FileExists(CurrentPath())) {
    RRQ_RETURN_IF_ERROR(LoadCheckpoint(generation_));
    RRQ_RETURN_IF_ERROR(ReplayWal(generation_));
  }
  RRQ_RETURN_IF_ERROR(OpenWalForAppend(generation_));
  if (!options_.env->FileExists(CurrentPath())) {
    std::string current;
    util::PutVarint64(&current, generation_);
    RRQ_RETURN_IF_ERROR(
        env::WriteStringToFileSync(env, current, CurrentPath()));
  }
  opened_ = true;
  return Status::OK();
}

Status KvStore::LoadCheckpoint(uint64_t generation) REQUIRES(mu_) {
  env::Env* env = options_.env;
  const std::string path = CheckpointPath(generation);
  if (!env->FileExists(path)) return Status::OK();  // Empty baseline.
  std::string data;
  RRQ_RETURN_IF_ERROR(env::ReadFileToString(env, path, &data));
  Slice input(data);
  uint64_t count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string key, value;
    RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &key));
    RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &value));
    data_[std::move(key)] = std::move(value);
  }
  return Status::OK();
}

Status KvStore::ReplayWal(uint64_t generation) REQUIRES(mu_) {
  env::Env* env = options_.env;
  const std::string path = WalPath(generation);
  if (!env->FileExists(path)) return Status::OK();

  std::unique_ptr<env::SequentialFile> file;
  RRQ_RETURN_IF_ERROR(env->NewSequentialFile(path, &file));
  wal::LogReader reader(std::move(file));

  std::unordered_map<txn::TxnId, WriteSet> prepared;
  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
    Slice input = record;
    if (input.empty()) continue;
    unsigned char type = static_cast<unsigned char>(input[0]);
    input.remove_prefix(1);
    uint64_t id = 0;
    RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &id));

    if (type == kRecCommit) {
      auto it = prepared.find(id);
      if (it != prepared.end()) {
        ApplyLocked(it->second);
        prepared.erase(it);
        ++recovered_txns_;
      }
      continue;
    }
    if (type != kRecPrepare && type != kRecCommitted) {
      return Status::Corruption("unknown KvStore WAL record type");
    }
    uint64_t op_count = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &op_count));
    WriteSet ws;
    ws.reserve(static_cast<size_t>(op_count));
    for (uint64_t i = 0; i < op_count; ++i) {
      if (input.empty()) return Status::Corruption("truncated write set");
      unsigned char op = static_cast<unsigned char>(input[0]);
      input.remove_prefix(1);
      WriteOp w;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &w.key));
      if (op == kOpPut) {
        std::string value;
        RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &value));
        w.value = std::move(value);
      } else if (op != kOpDelete) {
        return Status::Corruption("unknown write-op tag");
      }
      ws.push_back(std::move(w));
    }
    if (type == kRecCommitted) {
      ApplyLocked(ws);
      ++recovered_txns_;
    } else {
      prepared[id] = std::move(ws);
    }
  }

  // In-doubt resolution (presumed abort unless a resolver says
  // otherwise).
  for (auto& [id, ws] : prepared) {
    const bool committed =
        options_.in_doubt_resolver != nullptr && options_.in_doubt_resolver(id);
    if (committed) {
      ApplyLocked(ws);
      ++recovered_txns_;
      RRQ_LOG(kInfo) << name_ << ": in-doubt txn " << id
                     << " resolved to COMMIT";
    } else {
      RRQ_LOG(kInfo) << name_ << ": in-doubt txn " << id
                     << " resolved to ABORT (presumed)";
    }
  }
  return Status::OK();
}

Status KvStore::OpenWalForAppend(uint64_t generation) REQUIRES(mu_) {
  env::Env* env = options_.env;
  const std::string path = WalPath(generation);
  uint64_t size = 0;
  if (env->FileExists(path)) {
    RRQ_RETURN_IF_ERROR(env->GetFileSize(path, &size));
  }
  std::unique_ptr<env::WritableFile> file;
  RRQ_RETURN_IF_ERROR(env->NewAppendableFile(path, &file));
  wal_ = std::make_shared<wal::LogWriter>(std::move(file), size,
                                          options_.group_commit);
  return Status::OK();
}

void KvStore::ApplyLocked(const WriteSet& ws) {
  for (const WriteOp& op : ws) {
    if (op.value.has_value()) {
      data_[op.key] = *op.value;
    } else {
      data_.erase(op.key);
    }
  }
}

void KvStore::EncodeWriteSet(txn::TxnId id, const WriteSet& ws,
                             unsigned char type, std::string* out) {
  out->push_back(static_cast<char>(type));
  util::PutFixed64(out, id);
  util::PutVarint64(out, ws.size());
  for (const WriteOp& op : ws) {
    out->push_back(
        static_cast<char>(op.value.has_value() ? kOpPut : kOpDelete));
    util::PutLengthPrefixed(out, op.key);
    if (op.value.has_value()) util::PutLengthPrefixed(out, *op.value);
  }
}

Status KvStore::LogAndMaybeSync(const std::string& record, bool sync) {
  // Snapshot the writer under mu_; Checkpoint() swaps wal_. The
  // shared_ptr keeps the retired writer alive if a checkpoint races
  // this append.
  std::shared_ptr<wal::LogWriter> wal;
  {
    MutexLock guard(mu_);
    wal = wal_;
  }
  if (wal == nullptr) return Status::OK();
  uint64_t end_offset = 0;
  RRQ_RETURN_IF_ERROR(wal->AddRecord(record, &end_offset));
  if (sync) return wal->SyncTo(end_offset);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transactional operations

Status KvStore::Put(txn::Transaction* t, const Slice& key,
                    const Slice& value) {
  RRQ_RETURN_IF_ERROR(t->Lock(LockKey(key), txn::LockMode::kExclusive,
                              options_.lock_timeout_micros));
  t->Enlist(this);
  MutexLock guard(mu_);
  pending_[t->id()].push_back(WriteOp{key.ToString(), value.ToString()});
  return Status::OK();
}

Status KvStore::Delete(txn::Transaction* t, const Slice& key) {
  RRQ_RETURN_IF_ERROR(t->Lock(LockKey(key), txn::LockMode::kExclusive,
                              options_.lock_timeout_micros));
  t->Enlist(this);
  MutexLock guard(mu_);
  pending_[t->id()].push_back(WriteOp{key.ToString(), std::nullopt});
  return Status::OK();
}

Result<std::string> KvStore::Get(txn::Transaction* t, const Slice& key) {
  RRQ_RETURN_IF_ERROR(t->Lock(LockKey(key), txn::LockMode::kShared,
                              options_.lock_timeout_micros));
  MutexLock guard(mu_);
  // Read own (deferred) writes: scan the write set backwards.
  auto it = pending_.find(t->id());
  if (it != pending_.end()) {
    const std::string needle = key.ToString();
    for (auto op = it->second.rbegin(); op != it->second.rend(); ++op) {
      if (op->key == needle) {
        if (op->value.has_value()) return *op->value;
        return Status::NotFound("deleted in this transaction");
      }
    }
  }
  auto found = data_.find(key.ToString());
  if (found == data_.end()) return Status::NotFound(key.ToString());
  return found->second;
}

Result<std::string> KvStore::GetForUpdate(txn::Transaction* t,
                                          const Slice& key) {
  RRQ_RETURN_IF_ERROR(t->Lock(LockKey(key), txn::LockMode::kExclusive,
                              options_.lock_timeout_micros));
  return Get(t, key);  // S request is covered by the X hold.
}

Result<std::string> KvStore::GetCommitted(const Slice& key) const {
  MutexLock guard(mu_);
  auto found = data_.find(key.ToString());
  if (found == data_.end()) return Status::NotFound(key.ToString());
  return found->second;
}

std::vector<std::string> KvStore::ScanKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  MutexLock guard(mu_);
  for (auto it = data_.lower_bound(prefix);
       it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

size_t KvStore::size() const {
  MutexLock guard(mu_);
  return data_.size();
}

// ---------------------------------------------------------------------------
// ResourceManager

Status KvStore::Prepare(txn::TxnId id) {
  std::string record;
  bool have_wal = false;
  {
    MutexLock guard(mu_);
    auto it = pending_.find(id);
    WriteSet ws = it == pending_.end() ? WriteSet{} : std::move(it->second);
    if (it != pending_.end()) pending_.erase(it);
    EncodeWriteSet(id, ws, kRecPrepare, &record);
    prepared_[id] = std::move(ws);
    // Snapshotted under mu_: Checkpoint() swaps wal_ (the old code read
    // it unlocked here, racing the swap).
    have_wal = wal_ != nullptr;
  }
  // Prepared state must survive a crash: sync unconditionally.
  Status s = LogAndMaybeSync(record, /*sync=*/have_wal);
  if (!s.ok()) {
    MutexLock guard(mu_);
    prepared_.erase(id);
    return s;
  }
  return Status::OK();
}

Status KvStore::CommitTxn(txn::TxnId id) {
  std::string record;
  record.push_back(static_cast<char>(kRecCommit));
  util::PutFixed64(&record, id);
  RRQ_RETURN_IF_ERROR(LogAndMaybeSync(record, options_.sync_commits));
  MutexLock guard(mu_);
  auto it = prepared_.find(id);
  if (it == prepared_.end()) {
    return Status::Internal("commit of unprepared transaction");
  }
  ApplyLocked(it->second);
  prepared_.erase(it);
  return Status::OK();
}

Status KvStore::PrepareAndCommit(txn::TxnId id) {
  std::string record;
  WriteSet ws;
  {
    MutexLock guard(mu_);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      ws = std::move(it->second);
      pending_.erase(it);
    }
  }
  EncodeWriteSet(id, ws, kRecCommitted, &record);
  Status s = LogAndMaybeSync(record, options_.sync_commits);
  if (!s.ok()) return s;
  MutexLock guard(mu_);
  ApplyLocked(ws);
  return Status::OK();
}

void KvStore::AbortTxn(txn::TxnId id) {
  // Presumed abort: drop volatile state, log nothing.
  MutexLock guard(mu_);
  pending_.erase(id);
  prepared_.erase(id);
}

// ---------------------------------------------------------------------------
// Checkpointing

Status KvStore::Checkpoint() {
  if (options_.env == nullptr) return Status::OK();
  env::Env* env = options_.env;

  MutexLock guard(mu_);
  const uint64_t next_gen = generation_ + 1;

  // 1. Snapshot committed state.
  std::string snapshot;
  util::PutVarint64(&snapshot, data_.size());
  for (const auto& [key, value] : data_) {
    util::PutLengthPrefixed(&snapshot, key);
    util::PutLengthPrefixed(&snapshot, value);
  }
  RRQ_RETURN_IF_ERROR(
      env::WriteStringToFileSync(env, snapshot, CheckpointPath(next_gen)));

  // 2. Fresh WAL, re-logging in-flight prepares so in-doubt
  //    transactions stay resolvable.
  std::unique_ptr<env::WritableFile> file;
  RRQ_RETURN_IF_ERROR(env->NewWritableFile(WalPath(next_gen), &file));
  auto new_wal = std::make_shared<wal::LogWriter>(std::move(file), 0,
                                                  options_.group_commit);
  for (const auto& [id, ws] : prepared_) {
    std::string record;
    EncodeWriteSet(id, ws, kRecPrepare, &record);
    RRQ_RETURN_IF_ERROR(new_wal->AddRecord(record));
  }
  RRQ_RETURN_IF_ERROR(new_wal->Sync());

  // 3. Activate.
  std::string current;
  util::PutVarint64(&current, next_gen);
  RRQ_RETURN_IF_ERROR(env::WriteStringToFileSync(env, current, CurrentPath()));

  // 4. Retire the old generation.
  RemoveRetiredFile(WalPath(generation_));
  RemoveRetiredFile(CheckpointPath(generation_));
  generation_ = next_gen;
  wal_ = std::move(new_wal);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void KvStore::RemoveRetiredFile(const std::string& path) {
  Status s = options_.env->RemoveFile(path);
  if (s.ok() || s.IsNotFound()) return;  // Gen 0 has no checkpoint file.
  remove_failures_.fetch_add(1, std::memory_order_relaxed);
  RRQ_LOG(kWarn) << name_ << ": failed to retire " << path << ": "
                 << s.ToString() << " (recovery GC will re-attempt)";
}

uint64_t KvStore::wal_bytes() const {
  MutexLock guard(mu_);
  return wal_ == nullptr ? 0 : wal_->PhysicalSize();
}

uint64_t KvStore::wal_sync_count() const {
  MutexLock guard(mu_);
  return wal_ == nullptr ? 0 : wal_->sync_count();
}

uint64_t KvStore::wal_sync_request_count() const {
  MutexLock guard(mu_);
  return wal_ == nullptr ? 0 : wal_->sync_request_count();
}

}  // namespace rrq::storage
