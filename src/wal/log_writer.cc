#include "wal/log_writer.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"
#include "wal/log_format.h"

namespace rrq::wal {

LogWriter::LogWriter(std::unique_ptr<env::WritableFile> dest,
                     uint64_t initial_offset)
    : dest_(std::move(dest)),
      block_offset_(static_cast<int>(initial_offset % kBlockSize)),
      physical_size_(initial_offset) {}

Status LogWriter::AddRecord(const Slice& record) {
  std::lock_guard<std::mutex> guard(mu_);
  const char* ptr = record.data();
  size_t left = record.size();

  // Fragment the record as needed. Empty records emit one zero-length
  // FULL fragment.
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Zero-fill the block trailer and start a new block.
      if (leftover > 0) {
        static const char kZeroes[kHeaderSize] = {0};
        RRQ_RETURN_IF_ERROR(
            dest_->Append(Slice(kZeroes, static_cast<size_t>(leftover))));
        physical_size_ += static_cast<uint64_t>(leftover);
      }
      block_offset_ = 0;
    }

    const size_t avail = static_cast<size_t>(kBlockSize) -
                         static_cast<size_t>(block_offset_) - kHeaderSize;
    const size_t fragment_length = left < avail ? left : avail;
    const bool end = (left == fragment_length);

    unsigned char type;
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    RRQ_RETURN_IF_ERROR(EmitPhysicalRecord(type, ptr, fragment_length));
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (left > 0);
  return Status::OK();
}

Status LogWriter::EmitPhysicalRecord(unsigned char type, const char* ptr,
                                     size_t n) {
  char buf[kHeaderSize];
  buf[4] = static_cast<char>(n & 0xff);
  buf[5] = static_cast<char>(n >> 8);
  buf[6] = static_cast<char>(type);

  uint32_t crc = util::crc32c::Extend(
      util::crc32c::Value(reinterpret_cast<char*>(&buf[6]), 1), ptr, n);
  util::EncodeFixed32(buf, util::crc32c::Mask(crc));

  RRQ_RETURN_IF_ERROR(dest_->Append(Slice(buf, kHeaderSize)));
  RRQ_RETURN_IF_ERROR(dest_->Append(Slice(ptr, n)));
  block_offset_ += kHeaderSize + static_cast<int>(n);
  physical_size_ += kHeaderSize + n;
  return Status::OK();
}

Status LogWriter::Sync() {
  std::lock_guard<std::mutex> guard(mu_);
  RRQ_RETURN_IF_ERROR(dest_->Flush());
  return dest_->Sync();
}

uint64_t LogWriter::PhysicalSize() const {
  std::lock_guard<std::mutex> guard(mu_);
  return physical_size_;
}

}  // namespace rrq::wal
