#include "wal/log_writer.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"
#include "wal/log_format.h"

namespace rrq::wal {

LogWriter::LogWriter(std::unique_ptr<env::WritableFile> dest,
                     uint64_t initial_offset, bool group_commit)
    : dest_(std::move(dest)),
      group_commit_(group_commit),
      block_offset_(static_cast<int>(initial_offset % kBlockSize)),
      physical_size_(initial_offset),
      durable_offset_(initial_offset) {}

Status LogWriter::AddRecord(const Slice& record, uint64_t* end_offset) {
  MutexLock guard(mu_);
  const char* ptr = record.data();
  size_t left = record.size();

  // Fragment the record as needed. Empty records emit one zero-length
  // FULL fragment.
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Zero-fill the block trailer and start a new block.
      if (leftover > 0) {
        static const char kZeroes[kHeaderSize] = {0};
        RRQ_RETURN_IF_ERROR(
            dest_->Append(Slice(kZeroes, static_cast<size_t>(leftover))));
        physical_size_ += static_cast<uint64_t>(leftover);
      }
      block_offset_ = 0;
    }

    const size_t avail = static_cast<size_t>(kBlockSize) -
                         static_cast<size_t>(block_offset_) - kHeaderSize;
    const size_t fragment_length = left < avail ? left : avail;
    const bool end = (left == fragment_length);

    unsigned char type;
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    RRQ_RETURN_IF_ERROR(EmitPhysicalRecord(type, ptr, fragment_length));
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (left > 0);
  records_.fetch_add(1, std::memory_order_relaxed);
  if (end_offset != nullptr) *end_offset = physical_size_;
  return Status::OK();
}

Status LogWriter::EmitPhysicalRecord(unsigned char type, const char* ptr,
                                     size_t n) {
  char buf[kHeaderSize];
  buf[4] = static_cast<char>(n & 0xff);
  buf[5] = static_cast<char>(n >> 8);
  buf[6] = static_cast<char>(type);

  uint32_t crc = util::crc32c::Extend(
      util::crc32c::Value(reinterpret_cast<char*>(&buf[6]), 1), ptr, n);
  util::EncodeFixed32(buf, util::crc32c::Mask(crc));

  RRQ_RETURN_IF_ERROR(dest_->Append(Slice(buf, kHeaderSize)));
  RRQ_RETURN_IF_ERROR(dest_->Append(Slice(ptr, n)));
  block_offset_ += kHeaderSize + static_cast<int>(n);
  physical_size_ += kHeaderSize + n;
  return Status::OK();
}

Status LogWriter::SyncTo(uint64_t offset) {
  if (!group_commit_) {
    // Per-operation mode: every committer pays its own physical sync,
    // serialized. This is the baseline group commit is measured
    // against.
    sync_requests_.fetch_add(1, std::memory_order_relaxed);
    MutexLock guard(sync_mu_);
    uint64_t target;
    {
      MutexLock append_guard(mu_);
      target = physical_size_;
    }
    RRQ_RETURN_IF_ERROR(dest_->Flush());
    RRQ_RETURN_IF_ERROR(dest_->Sync());
    physical_syncs_.fetch_add(1, std::memory_order_relaxed);
    if (target > durable_offset_) durable_offset_ = target;
    return Status::OK();
  }

  MutexLock lock(sync_mu_);
  if (durable_offset_ >= offset) return Status::OK();  // Already covered.
  sync_requests_.fetch_add(1, std::memory_order_relaxed);
  while (true) {
    if (durable_offset_ >= offset) return Status::OK();  // Leader covered us.
    if (!sync_in_progress_) break;
    sync_cv_.Wait(sync_mu_);
  }

  // Become the sync leader. The physical sync runs without sync_mu_ so
  // new committers can append and queue up behind this round.
  sync_in_progress_ = true;
  lock.Unlock();

  // Snapshot the append frontier first: the sync below covers at least
  // these bytes (it may cover more — that only over-delivers
  // durability, which is always safe for a redo-only log).
  uint64_t target;
  {
    MutexLock append_guard(mu_);
    target = physical_size_;
  }
  Status s = dest_->Flush();
  if (s.ok()) s = dest_->Sync();

  lock.Lock();
  sync_in_progress_ = false;
  if (s.ok()) {
    physical_syncs_.fetch_add(1, std::memory_order_relaxed);
    if (target > durable_offset_) durable_offset_ = target;
  }
  sync_cv_.SignalAll();
  return s;
}

Status LogWriter::Sync() { return SyncTo(PhysicalSize()); }

uint64_t LogWriter::PhysicalSize() const {
  MutexLock guard(mu_);
  return physical_size_;
}

uint64_t LogWriter::durable_offset() const {
  MutexLock guard(sync_mu_);
  return durable_offset_;
}

}  // namespace rrq::wal
