#ifndef RRQ_WAL_LOG_READER_H_
#define RRQ_WAL_LOG_READER_H_

#include <memory>
#include <string>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"
#include "wal/log_format.h"

namespace rrq::wal {

/// Sequentially decodes records written by LogWriter.
///
/// Corruption handling follows the recovery contract: a corrupt or
/// torn fragment at the *tail* of the log (the common crash artifact)
/// ends iteration cleanly; ReadRecord returns false and EndedCleanly()
/// reports whether any mid-log corruption was skipped.
class LogReader {
 public:
  /// Takes ownership of `file`.
  explicit LogReader(std::unique_ptr<env::SequentialFile> file);

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// Reads the next logical record into *record, which points into
  /// *scratch. Returns false at end of log.
  bool ReadRecord(Slice* record, std::string* scratch);

  /// True when iteration ended at a clean end-of-file; false when
  /// corrupt data was encountered and skipped.
  bool EndedCleanly() const { return !saw_corruption_; }

  /// Number of corrupt bytes skipped (diagnostic).
  uint64_t DroppedBytes() const { return dropped_bytes_; }

 private:
  // Extended, in-memory-only record types returned by ReadPhysicalRecord.
  static constexpr int kEof = kMaxRecordType + 1;
  static constexpr int kBadRecord = kMaxRecordType + 2;

  int ReadPhysicalRecord(Slice* result);

  std::unique_ptr<env::SequentialFile> file_;
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;  // Unconsumed portion of the current block.
  bool eof_ = false;
  bool saw_corruption_ = false;
  uint64_t dropped_bytes_ = 0;
};

}  // namespace rrq::wal

#endif  // RRQ_WAL_LOG_READER_H_
