#include "wal/log_reader.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace rrq::wal {

LogReader::LogReader(std::unique_ptr<env::SequentialFile> file)
    : file_(std::move(file)), backing_store_(new char[kBlockSize]) {}

bool LogReader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->clear();
  bool in_fragmented_record = false;

  while (true) {
    Slice fragment;
    const int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case kFullType:
        if (in_fragmented_record) {
          // A FIRST..MIDDLE chain ended without a LAST: the writer
          // crashed mid-record. Drop the partial prefix.
          saw_corruption_ = true;
          dropped_bytes_ += scratch->size();
          scratch->clear();
        }
        *record = fragment;
        return true;

      case kFirstType:
        if (in_fragmented_record) {
          saw_corruption_ = true;
          dropped_bytes_ += scratch->size();
        }
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          saw_corruption_ = true;
          dropped_bytes_ += fragment.size();
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          saw_corruption_ = true;
          dropped_bytes_ += fragment.size();
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        if (in_fragmented_record) {
          // Torn tail: the final record was cut off by a crash. This
          // is the expected artifact; do not flag it as corruption.
          scratch->clear();
        }
        return false;

      case kBadRecord:
        if (in_fragmented_record) {
          dropped_bytes_ += scratch->size();
          scratch->clear();
          in_fragmented_record = false;
        }
        break;

      default:
        saw_corruption_ = true;
        if (in_fragmented_record) {
          dropped_bytes_ += scratch->size();
          scratch->clear();
          in_fragmented_record = false;
        }
        break;
    }
  }
}

int LogReader::ReadPhysicalRecord(Slice* result) {
  while (true) {
    if (buffer_.size() < static_cast<size_t>(kHeaderSize)) {
      if (!eof_) {
        // Any sub-header residue is block-trailer padding; discard it
        // and refill from the file.
        buffer_.clear();
        Status s = file_->Read(kBlockSize, &buffer_, backing_store_.get());
        if (!s.ok()) {
          buffer_.clear();
          eof_ = true;
          saw_corruption_ = true;
          return kEof;
        }
        if (buffer_.size() < static_cast<size_t>(kBlockSize)) eof_ = true;
        if (buffer_.empty()) return kEof;
        continue;
      }
      // A truncated header at EOF is a torn tail, not corruption.
      buffer_.clear();
      return kEof;
    }

    const char* header = buffer_.data();
    const uint32_t a = static_cast<unsigned char>(header[4]);
    const uint32_t b = static_cast<unsigned char>(header[5]);
    const unsigned char type = static_cast<unsigned char>(header[6]);
    const uint32_t length = a | (b << 8);

    if (type == kZeroType && length == 0) {
      // Zero-filled trailer (or preallocated space): skip to the next
      // block by dropping the rest of this buffer.
      buffer_.clear();
      continue;
    }

    if (kHeaderSize + length > buffer_.size()) {
      const size_t drop = buffer_.size();
      buffer_.clear();
      if (!eof_) {
        // Payload claims to extend past the block: corrupt length.
        saw_corruption_ = true;
        dropped_bytes_ += drop;
        return kBadRecord;
      }
      // Truncated payload at EOF: torn tail.
      return kEof;
    }

    const uint32_t expected_crc =
        util::crc32c::Unmask(util::DecodeFixed32(header));
    const uint32_t actual_crc =
        util::crc32c::Value(header + 6, 1 + length);
    if (expected_crc != actual_crc) {
      // A torn tail truncates the file, which the length checks above
      // catch; a checksum mismatch on a complete record is genuine
      // corruption wherever it appears.
      const size_t drop = buffer_.size();
      buffer_.clear();
      saw_corruption_ = true;
      dropped_bytes_ += drop;
      return kBadRecord;
    }

    *result = Slice(header + kHeaderSize, length);
    buffer_.remove_prefix(kHeaderSize + length);

    if (type > kMaxRecordType) {
      saw_corruption_ = true;
      return kBadRecord;
    }
    return type;
  }
}

}  // namespace rrq::wal
