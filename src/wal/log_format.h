#ifndef RRQ_WAL_LOG_FORMAT_H_
#define RRQ_WAL_LOG_FORMAT_H_

namespace rrq::wal {

// Physical log format (LevelDB-style):
//
// The log is a sequence of 32 KiB blocks. Each block holds a sequence
// of fragments; a logical record is one FULL fragment or a
// FIRST (MIDDLE)* LAST chain. A fragment never spans blocks; if fewer
// than kHeaderSize bytes remain in a block, they are zero-filled and
// the next fragment starts at the next block boundary.
//
// Fragment layout:
//   crc32c  : 4 bytes  (masked CRC of type byte + payload)
//   length  : 2 bytes  (little-endian payload length)
//   type    : 1 byte
//   payload : `length` bytes

enum RecordType : unsigned char {
  // Zero is reserved for the zero-filled block trailer.
  kZeroType = 0,
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};

constexpr int kMaxRecordType = kLastType;
constexpr int kBlockSize = 32768;
constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace rrq::wal

#endif  // RRQ_WAL_LOG_FORMAT_H_
