#ifndef RRQ_WAL_LOG_WRITER_H_
#define RRQ_WAL_LOG_WRITER_H_

#include <atomic>
#include <memory>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::wal {

/// Appends length-delimited, checksummed records to a log file.
/// Thread-safe: concurrent AddRecord calls are serialized internally.
///
/// Durability uses group commit: a committer appends its record
/// (receiving the log offset that must become durable to cover it),
/// then calls SyncTo(offset). The first waiter becomes the sync
/// leader, performs ONE physical Sync() covering every record appended
/// so far, and advances the durable-offset watermark, releasing every
/// follower whose offset is covered. Committers whose offset is
/// already below the watermark return without any I/O. N concurrent
/// committers therefore pay ~1 fsync instead of N.
///
/// Invariant: durable_offset() only advances after a successful
/// physical Sync() of at least that many log bytes, so SyncTo(o)
/// returning OK means bytes [0, o) survive a crash.
class LogWriter {
 public:
  /// Takes ownership of `dest`, which must be positioned at the end of
  /// an empty or freshly created file (use `initial_offset` to resume
  /// appending to a log with existing contents; those bytes are
  /// treated as already durable).
  ///
  /// `group_commit` selects batched leader/follower syncing (default).
  /// When false every SyncTo performs its own exclusive physical sync
  /// — the pre-group-commit behavior, kept for benchmarks that measure
  /// the difference.
  explicit LogWriter(std::unique_ptr<env::WritableFile> dest,
                     uint64_t initial_offset = 0, bool group_commit = true);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one logical record. The record is readable after the
  /// call, but durable only after a covering sync. When `end_offset`
  /// is non-null it receives the log offset to pass to SyncTo() for
  /// this record's durability.
  Status AddRecord(const Slice& record, uint64_t* end_offset = nullptr);

  /// Makes every byte below `offset` durable, batching with concurrent
  /// callers (see class comment). Returns immediately when the durable
  /// watermark already covers `offset`.
  Status SyncTo(uint64_t offset);

  /// Forces everything appended so far to stable storage. Equivalent
  /// to SyncTo(PhysicalSize()).
  Status Sync();

  /// Bytes written so far (including headers and block padding).
  uint64_t PhysicalSize() const;

  /// Watermark: bytes known durable on stable storage.
  uint64_t durable_offset() const;

  // ---- Group-commit observability ------------------------------------
  /// Physical Sync() calls issued to the file.
  uint64_t sync_count() const {
    return physical_syncs_.load(std::memory_order_relaxed);
  }
  /// Durability requests (SyncTo/Sync calls) that were not already
  /// satisfied by the watermark on entry. sync_request_count() /
  /// sync_count() is the batching factor (records per sync).
  uint64_t sync_request_count() const {
    return sync_requests_.load(std::memory_order_relaxed);
  }
  /// Records appended so far.
  uint64_t record_count() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  Status EmitPhysicalRecord(unsigned char type, const char* ptr, size_t n)
      REQUIRES(mu_);

  // dest_ itself is deliberately unguarded: Append runs under mu_ while
  // the sync leader calls Flush/Sync concurrently with no lock held —
  // the WritableFile contract allows an append racing a sync (the sync
  // then covers at least the bytes visible when it started).
  std::unique_ptr<env::WritableFile> dest_;
  const bool group_commit_;
  mutable Mutex mu_;  // Serializes appends; guards physical_size_.
  // Current offset within the current block.
  int block_offset_ GUARDED_BY(mu_);
  uint64_t physical_size_ GUARDED_BY(mu_);

  // Group-commit state. Lock order: sync_mu_ before mu_ (the per-op
  // sync path snapshots the append frontier while holding sync_mu_);
  // sync_mu_ is never held across the physical sync itself.
  mutable Mutex sync_mu_ ACQUIRED_BEFORE(mu_);
  CondVar sync_cv_;
  bool sync_in_progress_ GUARDED_BY(sync_mu_) = false;
  uint64_t durable_offset_ GUARDED_BY(sync_mu_);

  std::atomic<uint64_t> physical_syncs_{0};
  std::atomic<uint64_t> sync_requests_{0};
  std::atomic<uint64_t> records_{0};
};

}  // namespace rrq::wal

#endif  // RRQ_WAL_LOG_WRITER_H_
