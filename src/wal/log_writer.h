#ifndef RRQ_WAL_LOG_WRITER_H_
#define RRQ_WAL_LOG_WRITER_H_

#include <memory>
#include <mutex>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::wal {

/// Appends length-delimited, checksummed records to a log file.
/// Thread-safe: concurrent AddRecord calls are serialized internally
/// (the queue manager's group-commit path relies on this).
class LogWriter {
 public:
  /// Takes ownership of `dest`, which must be positioned at the end of
  /// an empty or freshly created file (use `initial_offset` to resume
  /// appending to a log with existing contents).
  explicit LogWriter(std::unique_ptr<env::WritableFile> dest,
                     uint64_t initial_offset = 0);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one logical record. The record is readable after the
  /// call, but durable only after Sync().
  Status AddRecord(const Slice& record);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Bytes written so far (including headers and block padding).
  uint64_t PhysicalSize() const;

 private:
  Status EmitPhysicalRecord(unsigned char type, const char* ptr, size_t n);

  std::unique_ptr<env::WritableFile> dest_;
  mutable std::mutex mu_;
  int block_offset_;  // Current offset within the current block.
  uint64_t physical_size_;
};

}  // namespace rrq::wal

#endif  // RRQ_WAL_LOG_WRITER_H_
