#ifndef RRQ_CORE_PROPERTY_CHECKER_H_
#define RRQ_CORE_PROPERTY_CHECKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace rrq::core {

/// Records, per request id, the events the paper's §3 guarantees
/// constrain, and judges the run afterwards:
///
///  - Exactly-Once Request Processing: every submitted rid has exactly
///    one committed execution.
///  - At-Least-Once Reply Processing: every submitted rid's reply is
///    processed one or more times.
///  - Request-Reply Matching: every processed reply carries the rid of
///    a request this client submitted (mismatches are recorded by the
///    client when an echoed rid is unexpected).
///
/// RecordCommittedExecution must be invoked only when the execution's
/// transaction actually commits (hook it via Transaction::OnCommit);
/// aborted attempts don't count — that's the whole point.
///
/// Thread-safe.
class PropertyChecker {
 public:
  PropertyChecker() = default;

  void RecordSubmission(const std::string& rid);
  void RecordCommittedExecution(const std::string& rid);
  void RecordReplyProcessed(const std::string& rid);
  void RecordMismatchedReply(const std::string& rid);

  struct Verdict {
    uint64_t submitted = 0;
    uint64_t duplicate_executions = 0;  ///< rids executed more than once.
    uint64_t lost_requests = 0;         ///< rids executed zero times.
    uint64_t unprocessed_replies = 0;   ///< rids whose reply was never processed.
    uint64_t mismatched_replies = 0;
    uint64_t phantom_executions = 0;    ///< executions of never-submitted rids.

    bool ExactlyOnceHolds() const {
      return duplicate_executions == 0 && lost_requests == 0 &&
             phantom_executions == 0;
    }
    bool AtLeastOnceRepliesHold() const { return unprocessed_replies == 0; }
    bool MatchingHolds() const { return mismatched_replies == 0; }
    bool AllHold() const {
      return ExactlyOnceHolds() && AtLeastOnceRepliesHold() && MatchingHolds();
    }
  };

  Verdict Check() const;

  /// rids that violate exactly-once (diagnostics).
  std::vector<std::string> Offenders() const;

 private:
  struct PerRid {
    uint64_t submissions = 0;
    uint64_t executions = 0;
    uint64_t replies_processed = 0;
    uint64_t mismatches = 0;
  };

  mutable Mutex mu_;
  std::map<std::string, PerRid> rids_ GUARDED_BY(mu_);
};

}  // namespace rrq::core

#endif  // RRQ_CORE_PROPERTY_CHECKER_H_
