#include "core/request_system.h"

namespace rrq::core {

/// Forwards every call to the system's *current* repository, so client
/// handles stay valid across CrashAndRecover. While the back end is
/// down, calls fail with Unavailable — exactly what a client of a
/// crashed node would see.
class RequestSystem::ForwardingQueueApi final : public queue::QueueApi {
 public:
  explicit ForwardingQueueApi(RequestSystem* system) : system_(system) {}

  Result<queue::RegistrationInfo> Register(const std::string& queue,
                                           const std::string& registrant,
                                           bool stable) override {
    ReaderMutexLock guard(system_->backend_mu_);
    queue::QueueRepository* repo = system_->repo_.get();
    if (repo == nullptr) return Down();
    return repo->Register(queue, registrant, stable);
  }
  Status Deregister(const std::string& queue,
                    const std::string& registrant) override {
    ReaderMutexLock guard(system_->backend_mu_);
    queue::QueueRepository* repo = system_->repo_.get();
    if (repo == nullptr) return Down();
    return repo->Deregister(queue, registrant);
  }
  Result<queue::ElementId> Enqueue(const std::string& queue,
                                   const Slice& contents, uint32_t priority,
                                   const std::string& registrant,
                                   const Slice& tag,
                                   bool /*one_way*/) override {
    ReaderMutexLock guard(system_->backend_mu_);
    queue::QueueRepository* repo = system_->repo_.get();
    if (repo == nullptr) return Down();
    return repo->Enqueue(nullptr, queue, contents, priority, registrant, tag);
  }
  Result<queue::Element> Dequeue(const std::string& queue,
                                 const std::string& registrant,
                                 const Slice& tag,
                                 uint64_t timeout_micros) override {
    ReaderMutexLock guard(system_->backend_mu_);
    queue::QueueRepository* repo = system_->repo_.get();
    if (repo == nullptr) return Down();
    return repo->Dequeue(nullptr, queue, registrant, tag, timeout_micros);
  }
  Result<queue::Element> Read(const std::string& queue,
                              queue::ElementId eid) override {
    ReaderMutexLock guard(system_->backend_mu_);
    queue::QueueRepository* repo = system_->repo_.get();
    if (repo == nullptr) return Down();
    return repo->Read(queue, eid);
  }
  Result<bool> KillElement(const std::string& queue,
                           queue::ElementId eid) override {
    ReaderMutexLock guard(system_->backend_mu_);
    queue::QueueRepository* repo = system_->repo_.get();
    if (repo == nullptr) return Down();
    return repo->KillElement(nullptr, queue, eid);
  }

 private:
  static Status Down() { return Status::Unavailable("queue manager is down"); }
  RequestSystem* system_;
};

RequestSystem::RequestSystem(SystemOptions options)
    : options_(options), network_(options.seed) {}

RequestSystem::~RequestSystem() = default;

Status RequestSystem::BuildBackend() {
  env::Env* env = options_.durable ? &mem_env_ : nullptr;

  txn::TxnManagerOptions txn_options;
  txn_options.env = env;
  txn_options.dir = "/txn";
  txn_options.sync_decisions = options_.sync_commits;
  txn_mgr_ = std::make_unique<txn::TransactionManager>(txn_options);
  RRQ_RETURN_IF_ERROR(txn_mgr_->Open());

  queue::RepositoryOptions repo_options;
  repo_options.env = env;
  repo_options.dir = "/qm";
  repo_options.sync_commits = options_.sync_commits;
  // Captures the manager pointer by value: the resolver runs inside
  // repo_->Open() below (while backend_mu_ is held exclusively), and a
  // rebuilt back end gets a fresh lambda over the fresh manager.
  repo_options.in_doubt_resolver = [tm = txn_mgr_.get()](txn::TxnId id) {
    return tm != nullptr && tm->WasCommitted(id);
  };
  repo_ = std::make_unique<queue::QueueRepository>("qm", repo_options);
  RRQ_RETURN_IF_ERROR(repo_->Open());

  Status s = repo_->CreateQueue(kRequestQueue, options_.request_queue_options);
  if (!s.ok() && !s.IsAlreadyExists()) return s;

  if (options_.remote_clients) {
    service_ = std::make_unique<comm::QueueService>(&network_,
                                                    kQueueServiceName,
                                                    repo_.get());
  }
  return Status::OK();
}

Status RequestSystem::Open() {
  if (opened_) return Status::FailedPrecondition("system already open");
  {
    WriterMutexLock guard(backend_mu_);
    RRQ_RETURN_IF_ERROR(BuildBackend());
  }
  local_api_ = std::make_unique<ForwardingQueueApi>(this);
  if (options_.remote_clients) {
    remote_api_ = std::make_unique<comm::RemoteQueueApi>(
        &network_, "clients", kQueueServiceName);
  }
  opened_ = true;
  return Status::OK();
}

queue::QueueApi* RequestSystem::client_api() {
  if (options_.remote_clients) return remote_api_.get();
  return local_api_.get();
}

client::ClerkOptions RequestSystem::MakeClerkOptions(
    const std::string& client_id) {
  client::ClerkOptions clerk;
  clerk.client_id = client_id;
  clerk.request_queue = kRequestQueue;
  clerk.reply_queue = ReplyQueueName(client_id);
  clerk.api = client_api();
  clerk.send_mode = options_.send_mode;
  clerk.receive_timeout_micros = options_.receive_timeout_micros;
  return clerk;
}

Result<std::unique_ptr<client::ReliableClient>> RequestSystem::MakeClient(
    const std::string& client_id, client::ReplyProcessor processor,
    client::TestableDevice* device) {
  {
    ReaderMutexLock guard(backend_mu_);
    if (repo_ == nullptr) {
      return Status::Unavailable("queue manager is down");
    }
    Status s = repo_->CreateQueue(ReplyQueueName(client_id),
                                  options_.request_queue_options);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  if (options_.remote_clients) {
    network_.SetLinkFaults("clients", kQueueServiceName,
                           options_.client_link_faults);
  }
  client::ReliableClientOptions options;
  options.clerk = MakeClerkOptions(client_id);
  options.device = device;
  auto reliable = std::make_unique<client::ReliableClient>(
      options, std::move(processor));
  RRQ_RETURN_IF_ERROR(reliable->Start());
  return reliable;
}

Result<std::unique_ptr<client::StreamingClient>>
RequestSystem::MakeStreamingClient(
    const std::string& client_id, int window,
    client::StreamingClient::StreamProcessor processor) {
  client::StreamingClient::Options options;
  options.client_id = client_id;
  options.request_queue = kRequestQueue;
  options.reply_queue_prefix = "reply." + client_id + ".s";
  options.api = client_api();
  options.window = window;
  options.receive_timeout_micros = options_.receive_timeout_micros;
  if (options_.remote_clients) {
    network_.SetLinkFaults("clients", kQueueServiceName,
                           options_.client_link_faults);
  }
  {
    ReaderMutexLock guard(backend_mu_);
    if (repo_ == nullptr) {
      return Status::Unavailable("queue manager is down");
    }
    for (int s = 0; s < window; ++s) {
      Status status = repo_->CreateQueue(options.reply_queue_prefix +
                                         std::to_string(s));
      if (!status.ok() && !status.IsAlreadyExists()) return status;
    }
  }
  auto streaming = std::make_unique<client::StreamingClient>(
      options, std::move(processor));
  RRQ_RETURN_IF_ERROR(streaming->Start());
  return streaming;
}

std::unique_ptr<server::Server> RequestSystem::MakeServer(
    server::RequestHandler handler, int threads) {
  server::ServerOptions options;
  options.name = "server";
  options.request_queue = kRequestQueue;
  options.threads = threads;
  ReaderMutexLock guard(backend_mu_);
  return std::make_unique<server::Server>(options, repo_.get(),
                                          txn_mgr_.get(), std::move(handler));
}

Status RequestSystem::CrashAndRecover() {
  if (!options_.durable) {
    return Status::FailedPrecondition(
        "crash recovery requires a durable system");
  }
  // Wait out in-flight client calls, then hold them off while the
  // node is down.
  WriterMutexLock guard(backend_mu_);
  // Tear down the node...
  service_.reset();
  repo_.reset();
  txn_mgr_.reset();
  // ...lose everything unsynced...
  mem_env_.SimulateCrash();
  // ...and recover from the WALs.
  return BuildBackend();
}

}  // namespace rrq::core
