#ifndef RRQ_CORE_BASELINE_H_
#define RRQ_CORE_BASELINE_H_

#include <atomic>
#include <functional>
#include <string>

#include "comm/network.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/status.h"

namespace rrq::core {

/// The §2 strawman the paper improves on: requests and replies move as
/// ordinary messages, with no recoverable queue between client and
/// server. "An untimely system failure may cause either the request or
/// the reply to be lost. The client may be unable to determine whether
/// the request or reply has been lost."
///
/// The server executes each *delivered* request in a transaction
/// (database-side atomicity is not the weakness; the request flow is).
using RawRequestHandler = std::function<Result<std::string>(
    txn::Transaction* t, const std::string& rid, const std::string& body)>;

class RawMessageServer {
 public:
  RawMessageServer(comm::Network* network, std::string endpoint,
                   txn::TransactionManager* txn_mgr,
                   RawRequestHandler handler);
  ~RawMessageServer();

  RawMessageServer(const RawMessageServer&) = delete;
  RawMessageServer& operator=(const RawMessageServer&) = delete;

  Status Register();
  void Unregister();

  uint64_t executed_count() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  Status Handle(const Slice& request, std::string* reply);

  comm::Network* network_;
  std::string endpoint_;
  txn::TransactionManager* txn_mgr_;
  RawRequestHandler handler_;
  bool registered_ = false;
  std::atomic<uint64_t> executed_{0};
};

/// Client-side retry discipline for the raw-message baseline.
enum class RetryPolicy : int {
  /// Send once; a failure leaves the request's fate unknown — it may
  /// be lost (never executed) or the reply may be lost (executed).
  kAtMostOnce = 0,
  /// Retry on failure until a reply arrives. Because many requests are
  /// not idempotent, retries can execute the request more than once.
  kAtLeastOnce = 1,
};

class RawMessageClient {
 public:
  RawMessageClient(comm::Network* network, std::string self,
                   std::string server_endpoint, RetryPolicy policy,
                   int max_retries = 8);

  /// Sends one request. OK with the reply body; Unavailable when the
  /// fate is unknown (at-most-once) or retries were exhausted.
  Result<std::string> Execute(const std::string& rid, const std::string& body);

  uint64_t sends() const { return sends_.load(std::memory_order_relaxed); }

 private:
  comm::Network* network_;
  std::string self_;
  std::string server_endpoint_;
  RetryPolicy policy_;
  int max_retries_;
  std::atomic<uint64_t> sends_{0};
};

}  // namespace rrq::core

#endif  // RRQ_CORE_BASELINE_H_
