#include "core/baseline.h"

#include "util/coding.h"

namespace rrq::core {

namespace {

std::string EncodeRawMessage(const std::string& rid, const std::string& body) {
  std::string out;
  util::PutLengthPrefixed(&out, rid);
  util::PutLengthPrefixed(&out, body);
  return out;
}

Status DecodeRawMessage(const Slice& wire, std::string* rid,
                        std::string* body) {
  Slice input = wire;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, rid));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, body));
  return Status::OK();
}

}  // namespace

RawMessageServer::RawMessageServer(comm::Network* network,
                                   std::string endpoint,
                                   txn::TransactionManager* txn_mgr,
                                   RawRequestHandler handler)
    : network_(network),
      endpoint_(std::move(endpoint)),
      txn_mgr_(txn_mgr),
      handler_(std::move(handler)) {}

RawMessageServer::~RawMessageServer() { Unregister(); }

Status RawMessageServer::Register() {
  if (registered_) return Status::OK();
  RRQ_RETURN_IF_ERROR(network_->RegisterEndpoint(
      endpoint_, [this](const Slice& request, std::string* reply) {
        return Handle(request, reply);
      }));
  registered_ = true;
  return Status::OK();
}

void RawMessageServer::Unregister() {
  if (registered_) {
    network_->RemoveEndpoint(endpoint_);
    registered_ = false;
  }
}

Status RawMessageServer::Handle(const Slice& request, std::string* reply) {
  std::string rid, body;
  RRQ_RETURN_IF_ERROR(DecodeRawMessage(request, &rid, &body));
  auto txn = txn_mgr_->Begin();
  auto result = handler_(txn.get(), rid, body);
  if (!result.ok()) {
    txn->Abort();
    return result.status();
  }
  RRQ_RETURN_IF_ERROR(txn->Commit());
  executed_.fetch_add(1, std::memory_order_relaxed);
  *reply = EncodeRawMessage(rid, *result);
  return Status::OK();
}

RawMessageClient::RawMessageClient(comm::Network* network, std::string self,
                                   std::string server_endpoint,
                                   RetryPolicy policy, int max_retries)
    : network_(network),
      self_(std::move(self)),
      server_endpoint_(std::move(server_endpoint)),
      policy_(policy),
      max_retries_(max_retries) {}

Result<std::string> RawMessageClient::Execute(const std::string& rid,
                                              const std::string& body) {
  const std::string wire = EncodeRawMessage(rid, body);
  const int attempts = policy_ == RetryPolicy::kAtMostOnce ? 1 : max_retries_;
  Status last = Status::Unavailable("no attempts made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    sends_.fetch_add(1, std::memory_order_relaxed);
    std::string reply;
    Status s = network_->Call(self_, server_endpoint_, wire, &reply);
    if (s.ok()) {
      std::string echoed_rid, reply_body;
      RRQ_RETURN_IF_ERROR(DecodeRawMessage(reply, &echoed_rid, &reply_body));
      if (echoed_rid != rid) {
        return Status::Internal("reply rid mismatch in raw protocol");
      }
      return reply_body;
    }
    last = s;
    if (!s.IsUnavailable()) return s;
    // At-least-once: blind retry — this is exactly where duplicate
    // executions come from.
  }
  return last;
}

}  // namespace rrq::core
