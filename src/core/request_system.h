#ifndef RRQ_CORE_REQUEST_SYSTEM_H_
#define RRQ_CORE_REQUEST_SYSTEM_H_

#include <memory>
#include <string>

#include "client/reliable_client.h"
#include "client/streaming_client.h"
#include "comm/network.h"
#include "comm/queue_service.h"
#include "env/mem_env.h"
#include "queue/queue_api.h"
#include "queue/queue_repository.h"
#include "server/server.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::core {

/// Options for a RequestSystem.
struct SystemOptions {
  uint64_t seed = 42;
  /// Durable back-end (MemEnv-backed WALs, survives CrashAndRecover)
  /// vs fully volatile.
  bool durable = true;
  bool sync_commits = true;
  /// When true, clients reach the queue manager through the simulated
  /// network (front-end/back-end split); otherwise in-process.
  bool remote_clients = false;
  /// Fault model applied to every client <-> QM link (remote mode).
  comm::LinkFaults client_link_faults;
  /// The shared request queue's options.
  queue::QueueOptions request_queue_options;
  client::SendMode send_mode = client::SendMode::kRpc;
  uint64_t receive_timeout_micros = 200'000;
};

/// The assembled System Model of Fig 4: an environment, a transaction
/// manager, a queue repository (with its WAL), the shared request
/// queue, per-client reply queues, and the plumbing to build clerks,
/// reliable clients, and servers against it — plus whole-node crash
/// simulation (everything unsynced is lost, then recovery replays the
/// WALs).
///
/// This facade is the recommended entry point for applications; the
/// individual layers remain usable directly.
class RequestSystem {
 public:
  static constexpr const char* kRequestQueue = "requests";
  static constexpr const char* kQueueServiceName = "qm";

  explicit RequestSystem(SystemOptions options = {});
  ~RequestSystem();

  RequestSystem(const RequestSystem&) = delete;
  RequestSystem& operator=(const RequestSystem&) = delete;

  /// Builds (or, after CrashAndRecover, rebuilds) the back end.
  Status Open();

  /// The returned pointer is valid until the next CrashAndRecover;
  /// callers coordinating with crashes hold no stale handles (tests
  /// re-fetch after recovery).
  queue::QueueRepository* repo() {
    ReaderMutexLock guard(backend_mu_);
    return repo_.get();
  }
  txn::TransactionManager* txn_manager() {
    ReaderMutexLock guard(backend_mu_);
    return txn_mgr_.get();
  }
  comm::Network* network() { return &network_; }
  env::MemEnv* mem_env() { return &mem_env_; }

  /// The QueueApi clients of this system should use (local or remote
  /// per options; stable across CrashAndRecover).
  queue::QueueApi* client_api();

  /// Creates the reply queue for `client_id` and returns a started
  /// ReliableClient bound to this system. The processor/device may be
  /// null.
  Result<std::unique_ptr<client::ReliableClient>> MakeClient(
      const std::string& client_id, client::ReplyProcessor processor,
      client::TestableDevice* device = nullptr);

  /// Builds (but does not start) a server with `threads` workers on
  /// the shared request queue.
  std::unique_ptr<server::Server> MakeServer(server::RequestHandler handler,
                                             int threads = 1);

  /// Creates the per-slot reply queues and returns a started
  /// StreamingClient (§11's streaming extension) with `window`
  /// requests in flight at once.
  Result<std::unique_ptr<client::StreamingClient>> MakeStreamingClient(
      const std::string& client_id, int window,
      client::StreamingClient::StreamProcessor processor);

  /// Simulates a crash of the back-end node: all unsynced bytes are
  /// dropped, the repository / transaction manager / queue service are
  /// torn down and recovered from durable state. Clients keep their
  /// QueueApi (it forwards to the recovered repository) and recover
  /// via their own reconnect protocol. Servers must be stopped first.
  Status CrashAndRecover();

  /// Name of `client_id`'s private reply queue.
  static std::string ReplyQueueName(const std::string& client_id) {
    return "reply." + client_id;
  }

  /// Convenience: clerk options pre-wired to this system.
  client::ClerkOptions MakeClerkOptions(const std::string& client_id);

 private:
  // QueueApi that forwards to the system's current repository, so
  // client handles survive CrashAndRecover.
  class ForwardingQueueApi;

  Status BuildBackend() REQUIRES(backend_mu_);

  SystemOptions options_;
  env::MemEnv mem_env_;
  comm::Network network_;
  // Guards the back-end lifetime: client-side calls hold it shared,
  // CrashAndRecover holds it exclusively while tearing down/rebuilding.
  SharedMutex backend_mu_;
  std::unique_ptr<txn::TransactionManager> txn_mgr_ GUARDED_BY(backend_mu_);
  std::unique_ptr<queue::QueueRepository> repo_ GUARDED_BY(backend_mu_);
  std::unique_ptr<comm::QueueService> service_ GUARDED_BY(backend_mu_);
  // Written once by Open() before any concurrent use, never swapped
  // afterwards (CrashAndRecover rebuilds the back end behind them).
  std::unique_ptr<ForwardingQueueApi> local_api_;
  std::unique_ptr<comm::RemoteQueueApi> remote_api_;
  bool opened_ = false;
};

}  // namespace rrq::core

#endif  // RRQ_CORE_REQUEST_SYSTEM_H_
