#include "core/property_checker.h"

namespace rrq::core {

void PropertyChecker::RecordSubmission(const std::string& rid) {
  MutexLock guard(mu_);
  ++rids_[rid].submissions;
}

void PropertyChecker::RecordCommittedExecution(const std::string& rid) {
  MutexLock guard(mu_);
  ++rids_[rid].executions;
}

void PropertyChecker::RecordReplyProcessed(const std::string& rid) {
  MutexLock guard(mu_);
  ++rids_[rid].replies_processed;
}

void PropertyChecker::RecordMismatchedReply(const std::string& rid) {
  MutexLock guard(mu_);
  ++rids_[rid].mismatches;
}

PropertyChecker::Verdict PropertyChecker::Check() const {
  MutexLock guard(mu_);
  Verdict verdict;
  for (const auto& [rid, record] : rids_) {
    if (record.submissions > 0) {
      ++verdict.submitted;
      if (record.executions == 0) ++verdict.lost_requests;
      if (record.executions > 1) ++verdict.duplicate_executions;
      if (record.replies_processed == 0) ++verdict.unprocessed_replies;
    } else if (record.executions > 0) {
      ++verdict.phantom_executions;
    }
    verdict.mismatched_replies += record.mismatches;
  }
  return verdict;
}

std::vector<std::string> PropertyChecker::Offenders() const {
  MutexLock guard(mu_);
  std::vector<std::string> offenders;
  for (const auto& [rid, record] : rids_) {
    if (record.submissions > 0 && record.executions != 1) {
      offenders.push_back(rid + " (executions=" +
                          std::to_string(record.executions) + ")");
    }
  }
  return offenders;
}

}  // namespace rrq::core
