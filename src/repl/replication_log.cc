#include "repl/replication_log.h"

#include <chrono>

namespace rrq::repl {

namespace {

std::chrono::steady_clock::time_point DeadlineAfter(uint64_t micros) {
  return std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
}

}  // namespace

uint64_t ReplicationLog::Append(std::string record) {
  MutexLock lock(mu_);
  const uint64_t seq = next_++;
  records_.push_back(std::move(record));
  while (records_.size() > max_buffered_) {
    if (base_ > acked_) overflowed_ = true;
    records_.pop_front();
    ++base_;
  }
  appended_cv_.SignalAll();
  return seq;
}

uint64_t ReplicationLog::head_seq() const {
  MutexLock lock(mu_);
  return next_ - 1;
}

uint64_t ReplicationLog::base_seq() const {
  MutexLock lock(mu_);
  return base_;
}

uint64_t ReplicationLog::acked() const {
  MutexLock lock(mu_);
  return acked_;
}

bool ReplicationLog::overflowed() const {
  MutexLock lock(mu_);
  return overflowed_;
}

void ReplicationLog::Acked(uint64_t seq) {
  MutexLock lock(mu_);
  if (seq <= acked_) return;
  acked_ = seq;
  while (base_ <= acked_ && !records_.empty()) {
    records_.pop_front();
    ++base_;
  }
  acked_cv_.SignalAll();
}

Status ReplicationLog::WaitAcked(uint64_t seq, uint64_t timeout_micros) {
  const auto deadline = DeadlineAfter(timeout_micros);
  MutexLock lock(mu_);
  while (acked_ < seq) {
    if (shutdown_) return Status::Cancelled("replication log shut down");
    if (snapshotting_) return Status::OK();  // Seed in progress; see header.
    if (acked_cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
        acked_ < seq) {
      return Status::Unavailable("replication ack timed out");
    }
  }
  return Status::OK();
}

void ReplicationLog::BeginSnapshot() {
  MutexLock lock(mu_);
  snapshotting_ = true;
  acked_cv_.SignalAll();
}

void ReplicationLog::EndSnapshot() {
  MutexLock lock(mu_);
  snapshotting_ = false;
}

Status ReplicationLog::Fetch(uint64_t from_seq, size_t max_records,
                             uint64_t timeout_micros,
                             std::vector<std::string>* records) {
  records->clear();
  if (from_seq == 0 || max_records == 0) {
    return Status::InvalidArgument("bad fetch bounds");
  }
  const auto deadline = DeadlineAfter(timeout_micros);
  MutexLock lock(mu_);
  while (from_seq >= next_) {  // Nothing at or past from_seq yet.
    if (shutdown_) return Status::Cancelled("replication log shut down");
    if (appended_cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
        from_seq >= next_) {
      return shutdown_ ? Status::Cancelled("replication log shut down")
                       : Status::NotFound("no new records");
    }
  }
  if (from_seq < base_) {
    return Status::Aborted("records below " + std::to_string(base_) +
                              " no longer retained");
  }
  const size_t offset = static_cast<size_t>(from_seq - base_);
  const size_t available = records_.size() - offset;
  const size_t take = available < max_records ? available : max_records;
  records->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    records->push_back(records_[offset + i]);
  }
  return Status::OK();
}

void ReplicationLog::Shutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  appended_cv_.SignalAll();
  acked_cv_.SignalAll();
}

}  // namespace rrq::repl
