#include "repl/repl_wire.h"

#include "net/frame.h"
#include "util/coding.h"

namespace rrq::repl {

namespace {

void AppendHeader(unsigned char op, uint64_t stream_id, std::string* out) {
  out->push_back(static_cast<char>(op));
  util::PutFixed64(out, stream_id);
}

}  // namespace

void EncodeHello(uint64_t stream_id, std::string* out) {
  AppendHeader(kReplHello, stream_id, out);
}

void EncodeShip(uint64_t stream_id, uint64_t first_seq,
                const std::vector<std::string>& records, std::string* out) {
  AppendHeader(kReplShip, stream_id, out);
  util::PutFixed64(out, first_seq);
  util::PutVarint64(out, records.size());
  for (const std::string& record : records) {
    util::PutLengthPrefixed(out, record);
  }
}

void EncodeSnapshotBegin(uint64_t stream_id, uint64_t barrier_seq,
                         std::string* out) {
  AppendHeader(kReplSnapshotBegin, stream_id, out);
  util::PutFixed64(out, barrier_seq);
}

void EncodeSnapshotChunk(uint64_t stream_id, const Slice& record,
                         std::string* out) {
  AppendHeader(kReplSnapshotChunk, stream_id, out);
  util::PutLengthPrefixed(out, record);
}

void EncodeSnapshotEnd(uint64_t stream_id, std::string* out) {
  AppendHeader(kReplSnapshotEnd, stream_id, out);
}

Status DecodeRequestHeader(Slice* input, unsigned char* op,
                           uint64_t* stream_id) {
  if (input->empty()) return Status::Corruption("empty repl request");
  *op = static_cast<unsigned char>((*input)[0]);
  input->remove_prefix(1);
  return util::GetFixed64(input, stream_id);
}

Status DecodeShipBody(Slice* input, uint64_t* first_seq,
                      std::vector<std::string>* records) {
  records->clear();
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, first_seq));
  uint64_t count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(input, &count));
  // A count the remaining bytes cannot possibly hold is garbage;
  // reject before reserving anything.
  if (count > input->size()) {
    return Status::Corruption("ship record count exceeds payload");
  }
  records->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string record;
    RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &record));
    records->push_back(std::move(record));
  }
  if (!input->empty()) {
    return Status::Corruption("trailing bytes after ship records");
  }
  return Status::OK();
}

Status DecodeSnapshotBeginBody(Slice* input, uint64_t* barrier_seq) {
  return util::GetFixed64(input, barrier_seq);
}

Status DecodeSnapshotChunkBody(Slice* input, std::string* record) {
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, record));
  if (!input->empty()) {
    return Status::Corruption("trailing bytes after snapshot chunk");
  }
  return Status::OK();
}

void EncodeReplReply(const Status& status, uint64_t watermark,
                     std::string* out) {
  net::EncodeStatus(status, out);
  util::PutFixed64(out, watermark);
}

Status DecodeReplReply(Slice input, uint64_t* watermark) {
  Status app = net::DecodeStatus(&input);
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, watermark));
  return app;
}

}  // namespace rrq::repl
