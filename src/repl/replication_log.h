#ifndef RRQ_REPL_REPLICATION_LOG_H_
#define RRQ_REPL_REPLICATION_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::repl {

/// In-memory sequenced buffer between a primary repository's
/// replication sink and the ReplicationSender. The repository's sink
/// appends records in apply order — the repository's per-shard
/// delivery tickets already serialize sink calls behind the
/// group-commit watermark, so the log's sequence numbers (1, 2, ...)
/// are exactly apply order. The sender fetches batches and the
/// backup's acks advance a watermark that both trims the buffer and
/// releases ack-mode committers.
///
/// Retention is bounded: past `max_buffered` records the oldest are
/// dropped even when unacked. A sender (or a freshly resumed backup)
/// asking for a dropped sequence gets Aborted — the "backup fell
/// behind, reseed required" verdict, surfaced through
/// ReplicationStatus rather than silently skipping records.
///
/// Thread-safe.
class ReplicationLog {
 public:
  explicit ReplicationLog(size_t max_buffered = 1 << 16)
      : max_buffered_(max_buffered == 0 ? 1 : max_buffered) {}

  ReplicationLog(const ReplicationLog&) = delete;
  ReplicationLog& operator=(const ReplicationLog&) = delete;

  /// Appends one record, returning its sequence number (from 1).
  uint64_t Append(std::string record);

  /// Sequence of the newest appended record (0 = none yet).
  uint64_t head_seq() const;
  /// Sequence of the oldest retained record; head_seq()+1 when the
  /// buffer is empty. A fetch below this is Aborted.
  uint64_t base_seq() const;
  /// Highest sequence acknowledged by the backup.
  uint64_t acked() const;
  /// True when retention ever dropped an unacked record.
  bool overflowed() const;

  /// Advances the ack watermark (monotonic; lower acks are no-ops),
  /// trims acknowledged records, and wakes WaitAcked callers.
  void Acked(uint64_t seq);

  /// Blocks until `seq` is acked, Shutdown() runs, or
  /// `timeout_micros` elapses (Unavailable — the semi-synchronous
  /// commit gate: the caller's commit stands, the error is surfaced).
  /// Returns OK immediately between BeginSnapshot()/EndSnapshot().
  Status WaitAcked(uint64_t seq, uint64_t timeout_micros);

  /// Marks a seed snapshot in progress: WaitAcked returns OK without
  /// blocking (already-parked waiters are released) until
  /// EndSnapshot(). The sender cannot advance acks while it is busy
  /// capturing/shipping the seed, so ack-mode committers parking
  /// behind it would deadlock the capture's delivery drain — and the
  /// gate is moot anyway: until the seed completes there is no
  /// consistent backup to fail over to. Ack mode degrades to async
  /// for the duration of the seed.
  void BeginSnapshot();
  void EndSnapshot();

  /// Copies up to `max_records` records starting at `from_seq` into
  /// `*records`. Blocks up to `timeout_micros` when `from_seq` is past
  /// the head (NotFound on timeout with nothing new — the sender's
  /// idle poll). Aborted when `from_seq` fell below base_seq().
  /// Cancelled after Shutdown().
  Status Fetch(uint64_t from_seq, size_t max_records,
               uint64_t timeout_micros, std::vector<std::string>* records);

  /// Wakes every blocked Fetch/WaitAcked with Cancelled. Appends after
  /// shutdown still sequence (the repository may still be committing)
  /// but nothing blocks.
  void Shutdown();

 private:
  const size_t max_buffered_;

  mutable Mutex mu_;
  CondVar appended_cv_;  // New records for blocked fetchers.
  CondVar acked_cv_;     // Watermark advance for ack-mode committers.
  std::deque<std::string> records_ GUARDED_BY(mu_);
  uint64_t base_ GUARDED_BY(mu_) = 1;   // Seq of records_.front().
  uint64_t next_ GUARDED_BY(mu_) = 1;   // Next seq to assign.
  uint64_t acked_ GUARDED_BY(mu_) = 0;
  bool overflowed_ GUARDED_BY(mu_) = false;
  bool shutdown_ GUARDED_BY(mu_) = false;
  bool snapshotting_ GUARDED_BY(mu_) = false;
};

}  // namespace rrq::repl

#endif  // RRQ_REPL_REPLICATION_LOG_H_
