#ifndef RRQ_REPL_REPLICA_APPLIER_H_
#define RRQ_REPL_REPLICA_APPLIER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "env/env.h"
#include "queue/queue_repository.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::repl {

struct ReplicaApplierOptions {
  /// Environment + directory holding the stream-identity file
  /// (REPL_STREAM). nullptr env keeps the identity in memory only.
  env::Env* env = nullptr;
  std::string dir;
  /// The backup repository records apply into. Must outlive the
  /// applier and already be Open()ed (its recovery restores the
  /// applied watermark).
  queue::QueueRepository* repo = nullptr;
};

/// Backup-side half of WAL shipping: an RpcHandler served on the
/// backup's replication TcpServer that feeds shipped records to
/// QueueRepository::ApplyReplicatedRecord in sequence order.
///
/// Stream identity: a primary's sequence numbers are only meaningful
/// within one primary incarnation, so the applier binds to the first
/// stream that seeds it and persists that id (REPL_STREAM) atomically
/// with snapshot completion. A hello from any other stream — a
/// restarted primary, or a different one — is refused with
/// FailedPrecondition("reseed required"): the operator wipes the
/// backup directory to accept a fresh seed. A crash mid-seed leaves a
/// non-empty repository with no stream file, which lands in the same
/// refused state instead of risking a double-applied snapshot.
///
/// Promotion flips the applier read-only-for-the-dead-primary: every
/// subsequent replication request is refused, so a partitioned
/// ex-primary that comes back cannot keep mutating the new primary.
///
/// Thread-safe: the transport may run handlers concurrently, so one
/// batch applies at a time under apply_mu_ (order within a batch is
/// the shipped order; across batches the gap check forces sequence
/// continuity).
class ReplicaApplier {
 public:
  explicit ReplicaApplier(ReplicaApplierOptions options);

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Loads the persisted stream identity (if any). Call once, after
  /// the repository's Open().
  Status Open();

  /// The RpcHandler: decodes one replication request, applies it,
  /// encodes the watermark reply. Always returns OK with a reply
  /// carrying the application status, except on requests too
  /// malformed to answer (transport drops the connection).
  Status Handle(const Slice& request, std::string* reply);

  /// Refuses all further replication traffic. Returns the applied
  /// watermark at the cut — the promoted state is exactly the
  /// primary's history through that sequence.
  uint64_t Promote();

  bool promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }
  uint64_t stream_id() const;
  uint64_t applied_seq() const { return options_.repo->applied_repl_seq(); }

  uint64_t ships_received() const {
    return ships_.load(std::memory_order_relaxed);
  }
  uint64_t records_applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  uint64_t duplicates_skipped() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  uint64_t gaps_rejected() const {
    return gaps_.load(std::memory_order_relaxed);
  }

 private:
  Status HandleHello(uint64_t stream, uint64_t* watermark)
      REQUIRES(apply_mu_);
  Status HandleShip(uint64_t stream, Slice* body, uint64_t* watermark)
      REQUIRES(apply_mu_);
  Status HandleSnapshotBegin(uint64_t stream, Slice* body,
                             uint64_t* watermark) REQUIRES(apply_mu_);
  Status HandleSnapshotChunk(uint64_t stream, Slice* body,
                             uint64_t* watermark) REQUIRES(apply_mu_);
  Status HandleSnapshotEnd(uint64_t stream, uint64_t* watermark)
      REQUIRES(apply_mu_);
  Status PersistStreamId(uint64_t stream) REQUIRES(apply_mu_);
  std::string StreamPath() const;

  ReplicaApplierOptions options_;

  mutable Mutex apply_mu_;
  uint64_t stream_id_ GUARDED_BY(apply_mu_) = 0;  // 0 = none adopted.
  bool snapshot_active_ GUARDED_BY(apply_mu_) = false;
  uint64_t snapshot_stream_ GUARDED_BY(apply_mu_) = 0;
  uint64_t snapshot_barrier_ GUARDED_BY(apply_mu_) = 0;

  std::atomic<bool> promoted_{false};
  std::atomic<uint64_t> ships_{0};
  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> duplicates_{0};
  std::atomic<uint64_t> gaps_{0};
};

}  // namespace rrq::repl

#endif  // RRQ_REPL_REPLICA_APPLIER_H_
