#include "repl/replica_applier.h"

#include <utility>

#include "repl/repl_wire.h"
#include "util/coding.h"

namespace rrq::repl {

ReplicaApplier::ReplicaApplier(ReplicaApplierOptions options)
    : options_(std::move(options)) {}

std::string ReplicaApplier::StreamPath() const {
  return options_.dir.empty() ? "REPL_STREAM"
                              : options_.dir + "/REPL_STREAM";
}

Status ReplicaApplier::Open() {
  MutexLock lock(apply_mu_);
  if (options_.env == nullptr) return Status::OK();
  const std::string path = StreamPath();
  if (!options_.env->FileExists(path)) return Status::OK();
  std::string data;
  RRQ_RETURN_IF_ERROR(env::ReadFileToString(options_.env, path, &data));
  Slice input(data);
  uint64_t id = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &id));
  if (id == 0) return Status::Corruption("zero stream id");
  stream_id_ = id;
  return Status::OK();
}

Status ReplicaApplier::PersistStreamId(uint64_t stream) {
  stream_id_ = stream;
  if (options_.env == nullptr) return Status::OK();
  std::string data;
  util::PutFixed64(&data, stream);
  return env::WriteStringToFileSync(options_.env, data, StreamPath());
}

uint64_t ReplicaApplier::stream_id() const {
  MutexLock lock(apply_mu_);
  return stream_id_;
}

uint64_t ReplicaApplier::Promote() {
  MutexLock lock(apply_mu_);  // Lets any in-flight batch finish first.
  promoted_.store(true, std::memory_order_release);
  snapshot_active_ = false;
  return options_.repo->applied_repl_seq();
}

Status ReplicaApplier::Handle(const Slice& request, std::string* reply) {
  Slice input = request;
  unsigned char op = 0;
  uint64_t stream = 0;
  // Too malformed to attribute: let the transport drop the connection.
  RRQ_RETURN_IF_ERROR(DecodeRequestHeader(&input, &op, &stream));

  MutexLock lock(apply_mu_);
  Status app;
  uint64_t watermark = options_.repo->applied_repl_seq();
  if (promoted_.load(std::memory_order_acquire)) {
    app = Status::FailedPrecondition("backup promoted; stream closed");
  } else if (stream == 0) {
    app = Status::InvalidArgument("zero stream id");
  } else {
    switch (op) {
      case kReplHello:
        app = HandleHello(stream, &watermark);
        break;
      case kReplShip:
        app = HandleShip(stream, &input, &watermark);
        break;
      case kReplSnapshotBegin:
        app = HandleSnapshotBegin(stream, &input, &watermark);
        break;
      case kReplSnapshotChunk:
        app = HandleSnapshotChunk(stream, &input, &watermark);
        break;
      case kReplSnapshotEnd:
        app = HandleSnapshotEnd(stream, &watermark);
        break;
      default:
        return Status::Corruption("unknown repl op");
    }
  }
  EncodeReplReply(app, watermark, reply);
  return Status::OK();
}

Status ReplicaApplier::HandleHello(uint64_t stream, uint64_t* watermark) {
  *watermark = options_.repo->applied_repl_seq();
  if (stream_id_ == stream) return Status::OK();  // Resume.
  if (stream_id_ != 0) {
    return Status::FailedPrecondition(
        "bound to another stream; reseed required");
  }
  // Fresh stream: only an empty repository may adopt one (anything
  // else is leftover state from a crashed seed or a previous life —
  // applying a new stream over it would diverge silently).
  if (*watermark != 0 || !options_.repo->ListQueues().empty()) {
    return Status::FailedPrecondition(
        "unseeded state present; reseed required");
  }
  return Status::OK();  // Adoption happens at snapshot end.
}

Status ReplicaApplier::HandleShip(uint64_t stream, Slice* body,
                                  uint64_t* watermark) {
  uint64_t first_seq = 0;
  std::vector<std::string> records;
  RRQ_RETURN_IF_ERROR(DecodeShipBody(body, &first_seq, &records));
  ships_.fetch_add(1, std::memory_order_relaxed);
  if (stream_id_ == 0 || stream != stream_id_) {
    return Status::FailedPrecondition("unknown stream; hello first");
  }
  if (first_seq == 0) return Status::InvalidArgument("zero ship seq");
  uint64_t applied = options_.repo->applied_repl_seq();
  if (first_seq > applied + 1) {
    gaps_.fetch_add(1, std::memory_order_relaxed);
    *watermark = applied;
    return Status::FailedPrecondition("sequence gap; rewind to watermark");
  }
  for (size_t i = 0; i < records.size(); ++i) {
    const uint64_t seq = first_seq + i;
    if (seq <= applied) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Status s = options_.repo->ApplyReplicatedRecord(Slice(records[i]), seq);
    if (!s.ok()) {
      *watermark = options_.repo->applied_repl_seq();
      return s;
    }
    applied = seq;
    applied_.fetch_add(1, std::memory_order_relaxed);
  }
  *watermark = options_.repo->applied_repl_seq();
  return Status::OK();
}

Status ReplicaApplier::HandleSnapshotBegin(uint64_t stream, Slice* body,
                                           uint64_t* watermark) {
  uint64_t barrier = 0;
  RRQ_RETURN_IF_ERROR(DecodeSnapshotBeginBody(body, &barrier));
  if (barrier == 0) {
    // A zero-barrier seed would commit watermark 0 — indistinguishable
    // from "never seeded" on the next hello, which then tries to
    // re-seed the bound stream and wedges. The sender pads its log so
    // this never happens; refuse it outright from anyone else.
    return Status::InvalidArgument("zero snapshot barrier");
  }
  if (stream_id_ != 0) {
    return Status::FailedPrecondition(
        "bound to another stream; reseed required");
  }
  if (options_.repo->applied_repl_seq() != 0 ||
      !options_.repo->ListQueues().empty()) {
    return Status::FailedPrecondition(
        "unseeded state present; reseed required");
  }
  snapshot_active_ = true;
  snapshot_stream_ = stream;
  snapshot_barrier_ = barrier;
  *watermark = 0;
  return Status::OK();
}

Status ReplicaApplier::HandleSnapshotChunk(uint64_t stream, Slice* body,
                                           uint64_t* watermark) {
  std::string record;
  RRQ_RETURN_IF_ERROR(DecodeSnapshotChunkBody(body, &record));
  if (!snapshot_active_ || stream != snapshot_stream_) {
    return Status::FailedPrecondition("no snapshot in progress");
  }
  // Untracked apply: the watermark only moves at snapshot end, so an
  // interrupted seed is detectable (state present, no stream file).
  Status s = options_.repo->ApplyReplicatedRecord(Slice(record), 0);
  if (!s.ok()) {
    snapshot_active_ = false;  // Poison the seed; sender restarts it.
    return s;
  }
  applied_.fetch_add(1, std::memory_order_relaxed);
  *watermark = 0;
  return Status::OK();
}

Status ReplicaApplier::HandleSnapshotEnd(uint64_t stream,
                                         uint64_t* watermark) {
  if (!snapshot_active_ || stream != snapshot_stream_) {
    return Status::FailedPrecondition("no snapshot in progress");
  }
  // Order matters: the watermark record commits (durably, through the
  // repository's WAL) before the stream file appears, so a crash
  // between the two still reads as "seed incomplete".
  RRQ_RETURN_IF_ERROR(
      options_.repo->CommitReplWatermark(snapshot_barrier_));
  RRQ_RETURN_IF_ERROR(PersistStreamId(stream));
  snapshot_active_ = false;
  *watermark = options_.repo->applied_repl_seq();
  return Status::OK();
}

}  // namespace rrq::repl
