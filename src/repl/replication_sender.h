#ifndef RRQ_REPL_REPLICATION_SENDER_H_
#define RRQ_REPL_REPLICATION_SENDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/tcp_transport.h"
#include "queue/queue_repository.h"
#include "repl/replication_log.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::repl {

struct ReplicationSenderOptions {
  /// The backup's replication listener.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Per-boot random stream identity (nonzero); see ReplicaApplier.
  uint64_t stream_id = 0;
  /// Records per ship call.
  size_t batch_max_records = 128;
  /// Idle poll on the replication log between ships.
  uint64_t poll_timeout_micros = 100'000;
  /// Backoff between reconnect/retry rounds (bounded, exponential).
  uint64_t backoff_initial_micros = 50'000;
  uint64_t backoff_max_micros = 1'000'000;
  /// Extra TcpChannel knobs (host/port are overwritten from above).
  net::TcpChannelOptions channel;
};

/// A point-in-time view of the shipping pipeline, served through the
/// ReplicationStatus admin op.
struct ReplicationState {
  /// "connecting" | "snapshot" | "shipping" | "fell_behind" | "stopped"
  std::string state;
  uint64_t stream_id = 0;
  /// Highest sequence the backup acknowledged.
  uint64_t acked_seq = 0;
  /// Newest sequence the primary has produced.
  uint64_t head_seq = 0;
  uint64_t ships_sent = 0;
  uint64_t snapshot_records_sent = 0;
  uint64_t reconnects = 0;
  std::string last_error;
};

/// Primary-side half of WAL shipping: a background thread that drains
/// the ReplicationLog over a dedicated v2 TcpChannel to the backup's
/// applier, with acks, gap rewind, and bounded reconnect/backoff.
///
/// The transport's never-resend rule does not apply to this channel:
/// shipping is idempotent by record sequence number (the backup dedups
/// at or below its watermark), so after any failure the sender simply
/// re-hellos, reads the backup's watermark, and resumes from there —
/// re-sending records whose fate was uncertain is exactly the
/// protocol.
///
/// Initial catch-up: a backup reporting watermark 0 is seeded with a
/// full-state snapshot (CaptureReplicaSnapshot at a log barrier S,
/// shipped as snapshot chunks) and then tailed from S+1. A backup
/// whose watermark fell below the log's retention window cannot catch
/// up and is reported as "fell_behind" (reseed: wipe the backup).
class ReplicationSender {
 public:
  ReplicationSender(ReplicationSenderOptions options, ReplicationLog* log,
                    queue::QueueRepository* repo);
  ~ReplicationSender();

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  /// Starts the shipping thread. InvalidArgument on a zero stream id.
  Status Start();
  /// Stops and joins the shipping thread (idempotent).
  void Stop();

  ReplicationState state() const;

 private:
  void SenderMain();
  // One connect → hello → (snapshot) → ship cycle; returns when the
  // connection breaks or Stop() is requested. Sets state/last_error.
  // True when the session reached the shipping state — the caller
  // resets its reconnect backoff (a healthy session must not leave
  // the next disconnect paying the maximum backoff).
  bool RunSession();
  Status CallBackup(const std::string& request, uint64_t* watermark);
  Status SendSnapshot(uint64_t* resume_seq);
  // Interruptible backoff sleep; returns false when stopping.
  bool BackoffSleep(uint64_t* backoff_micros);
  void SetState(const std::string& state);
  void SetError(const Status& error);

  ReplicationSenderOptions options_;
  ReplicationLog* const log_;
  queue::QueueRepository* const repo_;
  std::unique_ptr<net::TcpChannel> channel_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::thread thread_;

  mutable Mutex mu_;
  CondVar stop_cv_;  // Wakes BackoffSleep on Stop().
  std::string state_ GUARDED_BY(mu_) = "stopped";
  std::string last_error_ GUARDED_BY(mu_);

  std::atomic<uint64_t> ships_sent_{0};
  std::atomic<uint64_t> snapshot_records_sent_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace rrq::repl

#endif  // RRQ_REPL_REPLICATION_SENDER_H_
