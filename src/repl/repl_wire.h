#ifndef RRQ_REPL_REPL_WIRE_H_
#define RRQ_REPL_REPL_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace rrq::repl {

// Byte protocol for primary/backup WAL shipping (DESIGN.md §12). The
// messages ride the ordinary TCP transport as opaque RPC payloads: the
// sender is a TcpChannel client, the applier an RpcHandler on the
// backup's replication TcpServer. Like the queue service protocol,
// every reply is [EncodeStatus(application status)][fixed64 watermark]
// — the watermark (the backup's applied replication sequence) travels
// on errors too, so a sender can rewind to exactly where the backup
// stands after a gap or a reconnect.
//
// Every request carries the primary's per-boot random stream id: a
// sequence number is only meaningful within one primary incarnation
// (the replication log is in-memory), so a backup refuses records from
// a stream it wasn't seeded by instead of silently misapplying them.
//
// All decoders are a trust boundary: truncated or malformed payloads
// return Corruption/InvalidArgument and leave outputs unusable, never
// half-parsed state that gets acted on.

enum ReplOp : unsigned char {
  /// [stream_id:8] -> watermark reply. Opens (or resumes) a shipping
  /// session; OK means the backup accepts the stream and reports how
  /// far it got.
  kReplHello = 1,
  /// [stream_id:8][first_seq:8][varint count][count length-prefixed
  /// records] -> watermark reply. Records carry consecutive sequence
  /// numbers first_seq, first_seq+1, ... Duplicates (<= watermark) are
  /// acknowledged without re-applying; a gap (first_seq > watermark+1)
  /// is rejected so the sender rewinds.
  kReplShip = 2,
  /// [stream_id:8][barrier_seq:8] -> watermark reply. Starts a
  /// full-state seed onto an EMPTY backup; barrier_seq is the
  /// sender's log position the snapshot is consistent with.
  kReplSnapshotBegin = 3,
  /// [stream_id:8][length-prefixed record] -> watermark reply. One
  /// snapshot record, applied untracked (the watermark only advances
  /// at kReplSnapshotEnd, so a crash mid-seed is detectable).
  kReplSnapshotChunk = 4,
  /// [stream_id:8] -> watermark reply. Durably installs the barrier
  /// watermark and adopts the stream; shipping then resumes at
  /// barrier_seq+1.
  kReplSnapshotEnd = 5,
};

void EncodeHello(uint64_t stream_id, std::string* out);
void EncodeShip(uint64_t stream_id, uint64_t first_seq,
                const std::vector<std::string>& records, std::string* out);
void EncodeSnapshotBegin(uint64_t stream_id, uint64_t barrier_seq,
                         std::string* out);
void EncodeSnapshotChunk(uint64_t stream_id, const Slice& record,
                         std::string* out);
void EncodeSnapshotEnd(uint64_t stream_id, std::string* out);

/// Decodes the op byte and stream id shared by every request;
/// `*input` is left at the op-specific fields.
Status DecodeRequestHeader(Slice* input, unsigned char* op,
                           uint64_t* stream_id);
Status DecodeShipBody(Slice* input, uint64_t* first_seq,
                      std::vector<std::string>* records);
Status DecodeSnapshotBeginBody(Slice* input, uint64_t* barrier_seq);
Status DecodeSnapshotChunkBody(Slice* input, std::string* record);

/// Reply codec: application status + the backup's applied watermark.
void EncodeReplReply(const Status& status, uint64_t watermark,
                     std::string* out);
/// Returns the application status; `*watermark` is valid whenever the
/// reply itself parsed, regardless of that status.
Status DecodeReplReply(Slice input, uint64_t* watermark);

}  // namespace rrq::repl

#endif  // RRQ_REPL_REPL_WIRE_H_
