#include "repl/replication_sender.h"

#include <chrono>
#include <utility>

#include "repl/repl_wire.h"

namespace rrq::repl {

ReplicationSender::ReplicationSender(ReplicationSenderOptions options,
                                     ReplicationLog* log,
                                     queue::QueueRepository* repo)
    : options_(std::move(options)), log_(log), repo_(repo) {
  options_.channel.host = options_.host;
  options_.channel.port = options_.port;
  channel_ = std::make_unique<net::TcpChannel>(options_.channel);
}

ReplicationSender::~ReplicationSender() { Stop(); }

Status ReplicationSender::Start() {
  if (options_.stream_id == 0) {
    return Status::InvalidArgument("stream id must be nonzero");
  }
  if (started_.exchange(true)) return Status::OK();
  stop_.store(false);
  SetState("connecting");
  thread_ = std::thread([this] { SenderMain(); });
  return Status::OK();
}

void ReplicationSender::Stop() {
  if (!started_.load()) return;
  stop_.store(true);
  {
    MutexLock lock(mu_);
    stop_cv_.SignalAll();
  }
  // Fail any call parked on the channel so the thread notices quickly.
  channel_->Close();
  if (thread_.joinable()) thread_.join();
  started_.store(false);
  SetState("stopped");
}

ReplicationState ReplicationSender::state() const {
  ReplicationState out;
  {
    MutexLock lock(mu_);
    out.state = state_;
    out.last_error = last_error_;
  }
  out.stream_id = options_.stream_id;
  out.acked_seq = log_->acked();
  out.head_seq = log_->head_seq();
  out.ships_sent = ships_sent_.load(std::memory_order_relaxed);
  out.snapshot_records_sent =
      snapshot_records_sent_.load(std::memory_order_relaxed);
  out.reconnects = reconnects_.load(std::memory_order_relaxed);
  return out;
}

void ReplicationSender::SetState(const std::string& state) {
  MutexLock lock(mu_);
  state_ = state;
}

void ReplicationSender::SetError(const Status& error) {
  MutexLock lock(mu_);
  last_error_ = error.ToString();
}

bool ReplicationSender::BackoffSleep(uint64_t* backoff_micros) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(*backoff_micros);
  {
    MutexLock lock(mu_);
    while (!stop_.load(std::memory_order_acquire)) {
      if (stop_cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }
  *backoff_micros = *backoff_micros * 2 > options_.backoff_max_micros
                        ? options_.backoff_max_micros
                        : *backoff_micros * 2;
  return !stop_.load(std::memory_order_acquire);
}

void ReplicationSender::SenderMain() {
  uint64_t backoff = options_.backoff_initial_micros;
  while (!stop_.load(std::memory_order_acquire)) {
    if (RunSession()) backoff = options_.backoff_initial_micros;
    if (stop_.load(std::memory_order_acquire)) break;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    SetState("connecting");
    if (!BackoffSleep(&backoff)) break;
  }
  SetState("stopped");
}

Status ReplicationSender::CallBackup(const std::string& request,
                                     uint64_t* watermark) {
  std::string reply;
  RRQ_RETURN_IF_ERROR(channel_->Call(Slice(request), &reply));
  return DecodeReplReply(Slice(reply), watermark);
}

Status ReplicationSender::SendSnapshot(uint64_t* resume_seq) {
  SetState("snapshot");
  // Ack waits are suspended for the whole seed: this thread is the
  // only one that advances acks, so an ack-mode committer parked in
  // WaitAcked while we hold every shard lock in CaptureReplicaSnapshot
  // would stall the capture's delivery drain until its full ack
  // timeout — once per in-flight commit, serially. The gate protects
  // nothing yet anyway (no seeded backup exists to fail over to), so
  // ack mode degrades to async until tailing resumes.
  log_->BeginSnapshot();
  struct AckResume {
    ReplicationLog* log;
    ~AckResume() { log->EndSnapshot(); }
  } ack_resume{log_};
  // A seed at barrier 0 (nothing ever committed through the sink)
  // would leave the backup's watermark at 0, indistinguishable on
  // reconnect from a fresh backup — the sender would try to re-seed a
  // bound stream and wedge. Pad the empty log with one no-op record
  // so the barrier is always nonzero.
  if (log_->head_seq() == 0) {
    log_->Append(repo_->NoopReplicationRecord());
  }
  // The barrier pins the log position the captured state includes:
  // every commit at or before the capture has appended (shard delivery
  // drained inside CaptureReplicaSnapshot), so state == records 1..S
  // and tailing from S+1 loses nothing.
  std::vector<std::string> records;
  uint64_t barrier = 0;
  RRQ_RETURN_IF_ERROR(repo_->CaptureReplicaSnapshot(
      [this, &barrier] { barrier = log_->head_seq(); }, &records));
  uint64_t watermark = 0;
  std::string request;
  EncodeSnapshotBegin(options_.stream_id, barrier, &request);
  RRQ_RETURN_IF_ERROR(CallBackup(request, &watermark));
  for (const std::string& record : records) {
    if (stop_.load(std::memory_order_acquire)) {
      return Status::Cancelled("stopping");
    }
    request.clear();
    EncodeSnapshotChunk(options_.stream_id, Slice(record), &request);
    RRQ_RETURN_IF_ERROR(CallBackup(request, &watermark));
    snapshot_records_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  request.clear();
  EncodeSnapshotEnd(options_.stream_id, &request);
  RRQ_RETURN_IF_ERROR(CallBackup(request, &watermark));
  log_->Acked(watermark);
  *resume_seq = barrier + 1;
  return Status::OK();
}

bool ReplicationSender::RunSession() {
  std::string request;
  EncodeHello(options_.stream_id, &request);
  uint64_t watermark = 0;
  Status s = CallBackup(request, &watermark);
  if (!s.ok()) {
    SetError(s);
    return false;
  }
  uint64_t next = 0;
  if (watermark == 0) {
    // Fresh (or wiped) backup: full seed, then tail.
    uint64_t resume = 0;
    s = SendSnapshot(&resume);
    if (!s.ok()) {
      SetError(s);
      return false;
    }
    next = resume;
  } else {
    if (watermark + 1 < log_->base_seq()) {
      // The backup's position slid out of the retention window; no
      // record stream can reconnect its history to ours.
      SetState("fell_behind");
      SetError(Status::Aborted(
          "backup watermark " + std::to_string(watermark) +
          " below retained base " + std::to_string(log_->base_seq()) +
          "; reseed required"));
      return false;
    }
    log_->Acked(watermark);
    next = watermark + 1;
  }

  SetState("shipping");
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<std::string> records;
    s = log_->Fetch(next, options_.batch_max_records,
                    options_.poll_timeout_micros, &records);
    if (s.IsNotFound()) continue;  // Idle poll; re-check stop.
    if (s.IsCancelled()) return true;
    if (s.IsAborted()) {
      SetState("fell_behind");
      SetError(s);
      return true;
    }
    if (!s.ok()) {
      SetError(s);
      return true;
    }
    request.clear();
    EncodeShip(options_.stream_id, next, records, &request);
    s = CallBackup(request, &watermark);
    if (!s.ok()) {
      if (s.IsFailedPrecondition() && watermark + 1 < next &&
          watermark + 1 >= log_->base_seq()) {
        // Gap verdict: the backup told us where it stands — rewind.
        // (Only when that actually moves us: a rejection at the
        // backup's own watermark — promoted, wrong stream — must not
        // tight-loop here; it falls through to reconnect/backoff.)
        next = watermark + 1;
        continue;
      }
      SetError(s);
      return true;
    }
    ships_sent_.fetch_add(1, std::memory_order_relaxed);
    log_->Acked(watermark);
    next = watermark + 1;
  }
  return true;
}

}  // namespace rrq::repl
