#ifndef RRQ_TXN_RESOURCE_MANAGER_H_
#define RRQ_TXN_RESOURCE_MANAGER_H_

#include <string_view>

#include "txn/types.h"
#include "util/status.h"

namespace rrq::txn {

/// A participant in transaction commit. Queue repositories, the
/// recoverable KV store, the application-lock table, and even the
/// paper's "reply processor" (a testable display device) implement
/// this interface; the TransactionManager drives them through
/// one-phase or two-phase commit.
///
/// Contract:
///  - Prepare(t): make t's effects durable-but-undoable and vote. After
///    an OK vote the participant must be able to either commit or
///    abort t, surviving its own crash (in-doubt resolution goes back
///    to the coordinator, presumed abort).
///  - CommitTxn(t): make t's effects visible and permanent. Must
///    succeed once Prepare voted yes (failures here are fatal
///    invariant violations, not vetoes).
///  - AbortTxn(t): undo all of t's effects. Must be idempotent and
///    must work both before and after Prepare.
class ResourceManager {
 public:
  virtual ~ResourceManager() = default;

  /// Stable diagnostic name ("queue-repo:/bank", "kv:/accounts", ...).
  virtual std::string_view rm_name() const = 0;

  virtual Status Prepare(TxnId txn) = 0;
  virtual Status CommitTxn(TxnId txn) = 0;
  virtual void AbortTxn(TxnId txn) = 0;

  /// One-phase-commit fast path used when this is the only participant:
  /// the participant may fuse the prepare and commit records into one
  /// durable write. A failure means the transaction aborted (the
  /// coordinator will call AbortTxn). Default: Prepare then CommitTxn.
  virtual Status PrepareAndCommit(TxnId txn) {
    Status s = Prepare(txn);
    if (!s.ok()) return s;
    return CommitTxn(txn);
  }
};

}  // namespace rrq::txn

#endif  // RRQ_TXN_RESOURCE_MANAGER_H_
