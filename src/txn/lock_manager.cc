#include "txn/lock_manager.h"

#include <chrono>
#include <vector>

namespace rrq::txn {

bool LockManager::IsCompatible(const LockEntry& entry, TxnId txn,
                               LockMode mode) const {
  if (entry.exclusive_holder == txn) return true;  // Re-entrant (covers S).
  if (entry.exclusive_holder != kInvalidTxnId) return false;
  if (mode == LockMode::kShared) return true;
  // Exclusive request: grantable when no other holder; an upgrade is
  // grantable when txn is the sole shared holder.
  if (entry.shared_holders.empty()) return true;
  return entry.shared_holders.size() == 1 &&
         entry.shared_holders.count(txn) == 1;
}

void LockManager::Grant(LockEntry* entry, TxnId txn, LockMode mode) {
  if (mode == LockMode::kShared) {
    if (entry->exclusive_holder != txn) entry->shared_holders.insert(txn);
  } else {
    entry->shared_holders.erase(txn);  // Upgrade consumes the S hold.
    entry->exclusive_holder = txn;
  }
}

bool LockManager::WouldDeadlock(TxnId waiter, const LockEntry& entry) const {
  // DFS over the wait-for graph, starting from the holders `waiter`
  // would block on, looking for a path back to `waiter`.
  std::vector<TxnId> stack;
  std::set<TxnId> visited;
  auto push_holders = [&stack, &visited](const LockEntry& e) {
    if (e.exclusive_holder != kInvalidTxnId &&
        visited.insert(e.exclusive_holder).second) {
      stack.push_back(e.exclusive_holder);
    }
    for (TxnId h : e.shared_holders) {
      if (visited.insert(h).second) stack.push_back(h);
    }
  };
  push_holders(entry);
  while (!stack.empty()) {
    TxnId t = stack.back();
    stack.pop_back();
    if (t == waiter) return true;
    auto it = wait_for_.find(t);
    if (it == wait_for_.end()) continue;
    for (TxnId next : it->second) {
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

void LockManager::MaybeEraseEntry(const std::string& key) {
  auto it = table_.find(key);
  if (it != table_.end() && it->second.exclusive_holder == kInvalidTxnId &&
      it->second.shared_holders.empty() && it->second.waiter_count == 0) {
    table_.erase(it);
  }
}

Status LockManager::Lock(TxnId txn, const std::string& key, LockMode mode,
                         uint64_t timeout_micros) {
  MutexLock guard(mu_);
  LockEntry& entry = table_[key];

  if (IsCompatible(entry, txn, mode)) {
    Grant(&entry, txn, mode);
    held_[txn].insert(key);
    return Status::OK();
  }
  if (timeout_micros == 0) {
    MaybeEraseEntry(key);
    return Status::Busy("lock not immediately available: " + key);
  }
  if (WouldDeadlock(txn, entry)) {
    deadlocks_.fetch_add(1, std::memory_order_relaxed);
    MaybeEraseEntry(key);
    return Status::Aborted("deadlock detected waiting for " + key);
  }

  // Record wait-for edges and block.
  auto& edges = wait_for_[txn];
  if (entry.exclusive_holder != kInvalidTxnId) {
    edges.insert(entry.exclusive_holder);
  }
  for (TxnId h : entry.shared_holders) {
    if (h != txn) edges.insert(h);
  }
  waits_.fetch_add(1, std::memory_order_relaxed);
  ++entry.waiter_count;

  const auto start = std::chrono::steady_clock::now();
  const bool bounded = timeout_micros != UINT64_MAX;
  const auto deadline = start + std::chrono::microseconds(timeout_micros);

  Status result = Status::OK();
  while (true) {
    // Re-fetch the entry reference each iteration: the table is a
    // std::map so references are stable, but re-find defensively in
    // case the entry was erased while we slept (waiter_count keeps it
    // alive, so table_[key] is the same node).
    LockEntry& e = table_[key];
    if (IsCompatible(e, txn, mode)) {
      Grant(&e, txn, mode);
      held_[txn].insert(key);
      break;
    }
    // Re-check deadlock: edges may have formed while we waited.
    if (WouldDeadlock(txn, e)) {
      deadlocks_.fetch_add(1, std::memory_order_relaxed);
      result = Status::Aborted("deadlock detected waiting for " + key);
      break;
    }
    // Refresh wait-for edges to the current holders.
    auto& my_edges = wait_for_[txn];
    my_edges.clear();
    if (e.exclusive_holder != kInvalidTxnId) my_edges.insert(e.exclusive_holder);
    for (TxnId h : e.shared_holders) {
      if (h != txn) my_edges.insert(h);
    }
    if (bounded) {
      if (e.cv.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
          !IsCompatible(table_[key], txn, mode)) {
        result = Status::TimedOut("lock wait timed out: " + key);
        break;
      }
    } else {
      // Bounded internal wait so new deadlock cycles are re-examined
      // even without an explicit wakeup.
      e.cv.WaitFor(mu_, std::chrono::milliseconds(50));
    }
  }

  LockEntry& e = table_[key];
  --e.waiter_count;
  wait_for_.erase(txn);
  wait_micros_.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()),
      std::memory_order_relaxed);
  if (!result.ok()) {
    MaybeEraseEntry(key);
    return result;
  }
  return Status::OK();
}

void LockManager::Unlock(TxnId txn, const std::string& key) {
  MutexLock guard(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return;
  LockEntry& entry = it->second;
  if (entry.exclusive_holder == txn) entry.exclusive_holder = kInvalidTxnId;
  entry.shared_holders.erase(txn);
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    hit->second.erase(key);
    if (hit->second.empty()) held_.erase(hit);
  }
  entry.cv.SignalAll();
  MaybeEraseEntry(key);
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock guard(mu_);
  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  for (const std::string& key : hit->second) {
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    LockEntry& entry = it->second;
    if (entry.exclusive_holder == txn) entry.exclusive_holder = kInvalidTxnId;
    entry.shared_holders.erase(txn);
    entry.cv.SignalAll();
    MaybeEraseEntry(key);
  }
  held_.erase(hit);
  wait_for_.erase(txn);
}

bool LockManager::Holds(TxnId txn, const std::string& key,
                        LockMode mode) const {
  MutexLock guard(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  const LockEntry& entry = it->second;
  if (entry.exclusive_holder == txn) return true;
  return mode == LockMode::kShared && entry.shared_holders.count(txn) > 0;
}

}  // namespace rrq::txn
