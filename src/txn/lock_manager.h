#ifndef RRQ_TXN_LOCK_MANAGER_H_
#define RRQ_TXN_LOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "txn/types.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::txn {

enum class LockMode : int { kShared = 0, kExclusive = 1 };

/// Strict two-phase lock manager over string-named resources.
///
/// Supports shared/exclusive modes, re-entrant acquisition, S->X
/// upgrade, bounded waits, and wait-for-graph deadlock detection (the
/// youngest transaction in a detected cycle is the victim and gets
/// Status::Aborted). Locks are released en masse by ReleaseAll at
/// commit/abort, per strict 2PL.
///
/// Thread-safe. One global mutex guards the table; waits use per-entry
/// condition variables. Adequate for the simulator scale this library
/// targets; sharding the table is a straightforward extension.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `key` in `mode` for `txn`, waiting up to
  /// `timeout_micros` (0 = fail immediately if not free,
  /// UINT64_MAX = wait forever). Returns:
  ///  - OK          acquired (or already held in a covering mode)
  ///  - Aborted     this transaction was chosen as a deadlock victim
  ///  - TimedOut    the wait bound expired
  Status Lock(TxnId txn, const std::string& key, LockMode mode,
              uint64_t timeout_micros = UINT64_MAX);

  /// Releases one lock (used by short "latch-like" internal locks).
  void Unlock(TxnId txn, const std::string& key);

  /// Releases every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  /// True when `txn` holds `key` in a mode covering `mode`.
  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;

  // Cumulative statistics, for the contention benchmarks.
  uint64_t wait_count() const { return waits_.load(std::memory_order_relaxed); }
  uint64_t total_wait_micros() const {
    return wait_micros_.load(std::memory_order_relaxed);
  }
  uint64_t deadlock_count() const {
    return deadlocks_.load(std::memory_order_relaxed);
  }

 private:
  struct LockEntry {
    // Holders. Either one exclusive holder, or N shared holders.
    std::set<TxnId> shared_holders;
    TxnId exclusive_holder = kInvalidTxnId;
    CondVar cv;
    int waiter_count = 0;
  };

  bool IsCompatible(const LockEntry& entry, TxnId txn, LockMode mode) const
      REQUIRES(mu_);
  void Grant(LockEntry* entry, TxnId txn, LockMode mode) REQUIRES(mu_);
  bool WouldDeadlock(TxnId waiter, const LockEntry& entry) const
      REQUIRES(mu_);
  void MaybeEraseEntry(const std::string& key) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, LockEntry> table_ GUARDED_BY(mu_);
  // txn -> keys it holds (for ReleaseAll).
  std::unordered_map<TxnId, std::unordered_set<std::string>> held_
      GUARDED_BY(mu_);
  // Wait-for edges: waiter -> set of holders it waits on.
  std::unordered_map<TxnId, std::set<TxnId>> wait_for_ GUARDED_BY(mu_);

  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> wait_micros_{0};
  std::atomic<uint64_t> deadlocks_{0};
};

}  // namespace rrq::txn

#endif  // RRQ_TXN_LOCK_MANAGER_H_
