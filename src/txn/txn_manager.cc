#include "txn/txn_manager.h"

#include <algorithm>

#include "util/coding.h"
#include "util/logging.h"
#include "wal/log_reader.h"

namespace rrq::txn {

namespace {

constexpr unsigned char kDecisionCommit = 1;
constexpr unsigned char kDecisionForget = 2;

std::string DecisionLogPath(const std::string& dir) {
  return dir + "/DECISIONS";
}
std::string EpochPath(const std::string& dir) { return dir + "/EPOCH"; }

}  // namespace

// ---------------------------------------------------------------------------
// Transaction

Transaction::~Transaction() {
  if (state_ == TxnState::kActive || state_ == TxnState::kPreparing) {
    Abort();
  }
}

void Transaction::Enlist(ResourceManager* rm) {
  if (std::find(participants_.begin(), participants_.end(), rm) ==
      participants_.end()) {
    participants_.push_back(rm);
  }
}

void Transaction::OnCommit(std::function<void()> fn) {
  on_commit_.push_back(std::move(fn));
}

void Transaction::OnAbort(std::function<void()> fn) {
  on_abort_.push_back(std::move(fn));
}

Status Transaction::Lock(const std::string& key, LockMode mode,
                         uint64_t timeout_micros) {
  if (state_ != TxnState::kActive) {
    return Status::FailedPrecondition("transaction is not active");
  }
  return mgr_->lock_manager()->Lock(id_, key, mode, timeout_micros);
}

Status Transaction::Commit() { return mgr_->CommitInternal(this); }

Status Transaction::Abort() { return mgr_->AbortInternal(this); }

// ---------------------------------------------------------------------------
// TransactionManager

TransactionManager::TransactionManager(TxnManagerOptions options)
    : options_(std::move(options)) {}

TransactionManager::~TransactionManager() = default;

Status TransactionManager::Open() {
  if (options_.env == nullptr) {
    opened_ = true;
    return Status::OK();
  }
  env::Env* env = options_.env;
  RRQ_RETURN_IF_ERROR(env->CreateDirIfMissing(options_.dir));

  // Load and bump the epoch so TxnIds are never reused across restarts.
  uint16_t prior_epoch = 0;
  if (env->FileExists(EpochPath(options_.dir))) {
    std::string data;
    RRQ_RETURN_IF_ERROR(env::ReadFileToString(env, EpochPath(options_.dir), &data));
    if (data.size() >= 4) {
      prior_epoch = static_cast<uint16_t>(util::DecodeFixed32(data.data()));
    }
  }
  epoch_ = static_cast<uint16_t>(prior_epoch + 1);
  std::string epoch_bytes(4, '\0');
  util::EncodeFixed32(epoch_bytes.data(), epoch_);
  RRQ_RETURN_IF_ERROR(
      env::WriteStringToFileSync(env, epoch_bytes, EpochPath(options_.dir)));

  // Replay the decision log: committed = commits − forgets.
  const std::string log_path = DecisionLogPath(options_.dir);
  if (env->FileExists(log_path)) {
    std::unique_ptr<env::SequentialFile> file;
    RRQ_RETURN_IF_ERROR(env->NewSequentialFile(log_path, &file));
    wal::LogReader reader(std::move(file));
    Slice record;
    std::string scratch;
    MutexLock guard(mu_);
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() != 9) continue;  // type + fixed64 id
      unsigned char type = static_cast<unsigned char>(record[0]);
      TxnId id = util::DecodeFixed64(record.data() + 1);
      if (type == kDecisionCommit) {
        committed_.insert(id);
      } else if (type == kDecisionForget) {
        committed_.erase(id);
      }
    }
  }

  uint64_t size = 0;
  if (env->FileExists(log_path)) {
    RRQ_RETURN_IF_ERROR(env->GetFileSize(log_path, &size));
  }
  std::unique_ptr<env::WritableFile> file;
  RRQ_RETURN_IF_ERROR(env->NewAppendableFile(log_path, &file));
  decision_log_ = std::make_unique<wal::LogWriter>(std::move(file), size,
                                                   options_.group_commit);
  opened_ = true;
  return Status::OK();
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  uint64_t counter = next_counter_.fetch_add(1, std::memory_order_relaxed);
  TxnId id = MakeTxnId(epoch_, counter);
  return std::unique_ptr<Transaction>(new Transaction(this, id));
}

bool TransactionManager::WasCommitted(TxnId id) const {
  MutexLock guard(mu_);
  return committed_.count(id) > 0;
}

Status TransactionManager::LogDecision(unsigned char type, TxnId id,
                                       bool sync) {
  if (decision_log_ == nullptr) return Status::OK();
  std::string record;
  record.push_back(static_cast<char>(type));
  util::PutFixed64(&record, id);
  uint64_t end_offset = 0;
  RRQ_RETURN_IF_ERROR(decision_log_->AddRecord(record, &end_offset));
  if (sync) return decision_log_->SyncTo(end_offset);
  return Status::OK();
}

Status TransactionManager::CommitInternal(Transaction* t) {
  if (t->state_ == TxnState::kCommitted) return Status::OK();
  if (t->state_ != TxnState::kActive) {
    return Status::FailedPrecondition("commit of a non-active transaction");
  }
  t->state_ = TxnState::kPreparing;

  // One-participant fast path: fused prepare+commit (1PC).
  if (t->participants_.size() == 1) {
    ResourceManager* rm = t->participants_[0];
    Status s = rm->PrepareAndCommit(t->id_);
    if (!s.ok()) {
      t->state_ = TxnState::kActive;
      AbortInternal(t);
      return Status::Aborted("commit failed (" + std::string(rm->rm_name()) +
                             "): " + std::string(s.message()));
    }
    t->state_ = TxnState::kCommitted;
    locks_.ReleaseAll(t->id_);
    commits_.fetch_add(1, std::memory_order_relaxed);
    for (auto& fn : t->on_commit_) fn();
    t->on_commit_.clear();
    t->on_abort_.clear();
    return Status::OK();
  }

  // Phase 1: collect votes.
  for (ResourceManager* rm : t->participants_) {
    Status s = rm->Prepare(t->id_);
    if (!s.ok()) {
      RRQ_LOG(kInfo) << "prepare veto from " << rm->rm_name() << ": "
                     << s.ToString();
      t->state_ = TxnState::kActive;  // Allow AbortInternal to proceed.
      AbortInternal(t);
      return Status::Aborted("prepare failed (" + std::string(rm->rm_name()) +
                             "): " + std::string(s.message()));
    }
  }

  // Decision point: with multiple participants the commit decision
  // must be durable before phase 2 (presumed abort).
  {
    Status s = LogDecision(kDecisionCommit, t->id_, options_.sync_decisions);
    if (!s.ok()) {
      t->state_ = TxnState::kActive;
      AbortInternal(t);
      return Status::Aborted("decision logging failed: " +
                             std::string(s.message()));
    }
    MutexLock guard(mu_);
    committed_.insert(t->id_);
  }

  // Phase 2.
  Status phase2 = Status::OK();
  for (ResourceManager* rm : t->participants_) {
    Status s = rm->CommitTxn(t->id_);
    if (!s.ok()) {
      // After a durable commit decision a participant commit failure
      // is an invariant violation; surface it but keep committing the
      // rest (a real system would retry the participant).
      RRQ_LOG(kError) << "post-decision commit failure from " << rm->rm_name()
                      << ": " << s.ToString();
      phase2 = Status::Internal("participant failed after commit decision: " +
                                std::string(s.message()));
    }
  }

  {
    // All participants answered; the decision can be forgotten.
    LogDecision(kDecisionForget, t->id_, /*sync=*/false);
    MutexLock guard(mu_);
    committed_.erase(t->id_);
  }

  t->state_ = TxnState::kCommitted;
  locks_.ReleaseAll(t->id_);
  commits_.fetch_add(1, std::memory_order_relaxed);
  for (auto& fn : t->on_commit_) fn();
  t->on_commit_.clear();
  t->on_abort_.clear();
  return phase2;
}

Status TransactionManager::AbortInternal(Transaction* t) {
  if (t->state_ == TxnState::kAborted) return Status::OK();
  if (t->state_ == TxnState::kCommitted) {
    return Status::FailedPrecondition("abort of a committed transaction");
  }
  for (ResourceManager* rm : t->participants_) {
    rm->AbortTxn(t->id_);
  }
  t->state_ = TxnState::kAborted;
  locks_.ReleaseAll(t->id_);
  aborts_.fetch_add(1, std::memory_order_relaxed);
  for (auto& fn : t->on_abort_) fn();
  t->on_commit_.clear();
  t->on_abort_.clear();
  return Status::OK();
}

Status RunInTransaction(TransactionManager* mgr, int max_attempts,
                        const std::function<Status(Transaction*)>& body) {
  Status last = Status::Internal("RunInTransaction: no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto txn = mgr->Begin();
    Status s = body(txn.get());
    if (s.ok()) {
      s = txn->Commit();
      if (s.ok()) return Status::OK();
    } else {
      txn->Abort();
    }
    last = s;
    const bool retryable = s.IsAborted() || s.IsBusy() || s.IsTimedOut();
    if (!retryable) return s;
  }
  return last;
}

}  // namespace rrq::txn
