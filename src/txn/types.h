#ifndef RRQ_TXN_TYPES_H_
#define RRQ_TXN_TYPES_H_

#include <cstdint>

namespace rrq::txn {

/// Transaction identifier. The high 16 bits carry the coordinator
/// epoch (incremented on every coordinator restart), the low 48 bits a
/// per-epoch counter — so identifiers are never reused across crashes
/// and participants can key undo/redo state by TxnId alone.
using TxnId = uint64_t;

constexpr TxnId kInvalidTxnId = 0;

constexpr TxnId MakeTxnId(uint16_t epoch, uint64_t counter) {
  return (static_cast<uint64_t>(epoch) << 48) | (counter & 0xffffffffffffull);
}

constexpr uint16_t TxnIdEpoch(TxnId id) { return static_cast<uint16_t>(id >> 48); }
constexpr uint64_t TxnIdCounter(TxnId id) { return id & 0xffffffffffffull; }

enum class TxnState : int {
  kActive = 0,
  kPreparing = 1,
  kCommitted = 2,
  kAborted = 3,
};

}  // namespace rrq::txn

#endif  // RRQ_TXN_TYPES_H_
