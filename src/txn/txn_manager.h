#ifndef RRQ_TXN_TXN_MANAGER_H_
#define RRQ_TXN_TXN_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "env/env.h"
#include "txn/lock_manager.h"
#include "txn/resource_manager.h"
#include "txn/types.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "wal/log_writer.h"

namespace rrq::txn {

class TransactionManager;

/// Handle for one transaction. Obtained from
/// TransactionManager::Begin(); single-threaded use (one transaction
/// is driven by one thread, the paper's server model).
///
/// Destroying an active transaction aborts it.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }

  /// Adds `rm` as a commit participant. Idempotent. `rm` must outlive
  /// the transaction.
  void Enlist(ResourceManager* rm);

  /// Registers a volatile action to run after the commit decision is
  /// final (e.g. waking a dequeuer). Not recovered across crashes.
  void OnCommit(std::function<void()> fn);

  /// Registers a volatile action to run if the transaction aborts.
  void OnAbort(std::function<void()> fn);

  /// Acquires a two-phase lock held until commit/abort.
  Status Lock(const std::string& key, LockMode mode,
              uint64_t timeout_micros = UINT64_MAX);

  /// Commits: prepares every participant, durably logs the decision
  /// (when more than one participant and the coordinator is durable),
  /// then commits participants, releases locks, runs callbacks.
  /// On any prepare failure the transaction aborts and the result is
  /// Status::Aborted carrying the veto message.
  Status Commit();

  /// Aborts: undoes every participant, releases locks, runs abort
  /// callbacks. Idempotent once terminal.
  Status Abort();

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* mgr, TxnId id) : mgr_(mgr), id_(id) {}

  TransactionManager* mgr_;
  TxnId id_;
  TxnState state_ = TxnState::kActive;
  std::vector<ResourceManager*> participants_;
  std::vector<std::function<void()>> on_commit_;
  std::vector<std::function<void()>> on_abort_;
};

/// Options for TransactionManager.
struct TxnManagerOptions {
  /// Environment for the durable decision log; nullptr makes the
  /// coordinator volatile (fine for single-repository systems where
  /// 1PC never writes a decision record).
  env::Env* env = nullptr;
  /// Directory for the decision log and epoch file.
  std::string dir;
  /// Sync the decision record before committing participants (2PC
  /// correctness requires true; false trades durability for speed in
  /// benchmarks that measure the difference).
  bool sync_decisions = true;
  /// Batch decision-log syncs across concurrent coordinators
  /// (leader/follower group commit). Disable for the
  /// per-operation-sync baseline.
  bool group_commit = true;
};

/// The transaction coordinator. Issues transaction ids, drives
/// one-phase and presumed-abort two-phase commit over enlisted
/// ResourceManagers, owns the global LockManager, and durably records
/// commit decisions so participants can resolve in-doubt transactions
/// after a crash.
///
/// Thread-safe.
class TransactionManager {
 public:
  explicit TransactionManager(TxnManagerOptions options = {});
  ~TransactionManager();

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Loads the decision log and advances the epoch. Must be called
  /// once before Begin() when the coordinator is durable; a no-op for
  /// volatile coordinators.
  Status Open();

  /// Starts a new transaction.
  std::unique_ptr<Transaction> Begin();

  LockManager* lock_manager() { return &locks_; }

  /// Resolution for in-doubt participants (presumed abort): true iff a
  /// commit decision for `id` was durably recorded and not yet
  /// forgotten, or was decided in this incarnation.
  bool WasCommitted(TxnId id) const;

  uint64_t commit_count() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t abort_count() const { return aborts_.load(std::memory_order_relaxed); }

 private:
  friend class Transaction;

  Status CommitInternal(Transaction* t);
  Status AbortInternal(Transaction* t);
  Status LogDecision(unsigned char type, TxnId id, bool sync);

  TxnManagerOptions options_;
  LockManager locks_;
  std::atomic<uint64_t> next_counter_{1};
  uint16_t epoch_ = 0;
  bool opened_ = false;

  mutable Mutex mu_;
  // Decided, not yet forgotten.
  std::unordered_set<TxnId> committed_ GUARDED_BY(mu_);
  // Created once by Open() before any concurrent use and never swapped
  // afterwards (unlike KvStore's wal_ there is no checkpoint that
  // replaces it), so reads need no lock; LogWriter itself is
  // internally synchronized.
  std::unique_ptr<wal::LogWriter> decision_log_;

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

/// Runs `body` inside a transaction, committing on OK, aborting and
/// retrying (up to `max_attempts`) on Aborted/Busy/TimedOut — the
/// standard server idiom for deadlock-victim retry. Any other error
/// aborts and is returned as-is.
Status RunInTransaction(TransactionManager* mgr, int max_attempts,
                        const std::function<Status(Transaction*)>& body);

}  // namespace rrq::txn

#endif  // RRQ_TXN_TXN_MANAGER_H_
