#include "util/status.h"

namespace rrq {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kNotConnected: return "NotConnected";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string_view message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::string(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

Status Status::NotFound(std::string_view msg) {
  return Status(StatusCode::kNotFound, msg);
}
Status Status::AlreadyExists(std::string_view msg) {
  return Status(StatusCode::kAlreadyExists, msg);
}
Status Status::InvalidArgument(std::string_view msg) {
  return Status(StatusCode::kInvalidArgument, msg);
}
Status Status::Corruption(std::string_view msg) {
  return Status(StatusCode::kCorruption, msg);
}
Status Status::IOError(std::string_view msg) {
  return Status(StatusCode::kIOError, msg);
}
Status Status::Busy(std::string_view msg) {
  return Status(StatusCode::kBusy, msg);
}
Status Status::Aborted(std::string_view msg) {
  return Status(StatusCode::kAborted, msg);
}
Status Status::TimedOut(std::string_view msg) {
  return Status(StatusCode::kTimedOut, msg);
}
Status Status::NotConnected(std::string_view msg) {
  return Status(StatusCode::kNotConnected, msg);
}
Status Status::Unavailable(std::string_view msg) {
  return Status(StatusCode::kUnavailable, msg);
}
Status Status::FailedPrecondition(std::string_view msg) {
  return Status(StatusCode::kFailedPrecondition, msg);
}
Status Status::Cancelled(std::string_view msg) {
  return Status(StatusCode::kCancelled, msg);
}
Status Status::Internal(std::string_view msg) {
  return Status(StatusCode::kInternal, msg);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result.append(": ");
  result.append(rep_->message);
  return result;
}

}  // namespace rrq
