#ifndef RRQ_UTIL_CLOCK_H_
#define RRQ_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace rrq::util {

/// Time source abstraction. Production code uses RealClock; tests and
/// deterministic benchmarks use SimClock so that timeouts and failure
/// schedules are reproducible.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic time in microseconds.
  virtual uint64_t NowMicros() const = 0;

  /// Sleeps (really or virtually) for `micros`.
  virtual void SleepMicros(uint64_t micros) = 0;
};

/// Wall-clock-backed monotonic clock.
class RealClock : public Clock {
 public:
  uint64_t NowMicros() const override;
  void SleepMicros(uint64_t micros) override;

  /// Process-wide shared instance.
  static RealClock* Instance();
};

/// Virtual clock whose time advances only when told to (or when a
/// "sleeper" sleeps). Thread-safe.
class SimClock : public Clock {
 public:
  explicit SimClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// Virtual sleep: advances the clock. (A simplification adequate for
  /// single-driver simulations; multi-threaded tests use RealClock.)
  void SleepMicros(uint64_t micros) override { Advance(micros); }

  void Advance(uint64_t micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> now_;
};

}  // namespace rrq::util

#endif  // RRQ_UTIL_CLOCK_H_
