#ifndef RRQ_UTIL_CODING_H_
#define RRQ_UTIL_CODING_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::util {

// Little-endian fixed-width encodings plus LEB128 varints, the record
// vocabulary used by the WAL, the queue manager's durable state, and
// message serialization. All appenders write to a std::string; all
// getters consume from a Slice (advancing it) and fail with
// Status::Corruption on truncated input.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint32 length prefix followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, const Slice& value);

Status GetFixed32(Slice* input, uint32_t* value);
Status GetFixed64(Slice* input, uint64_t* value);
Status GetVarint32(Slice* input, uint32_t* value);
Status GetVarint64(Slice* input, uint64_t* value);

/// Parses a length-prefixed byte string. The returned Slice aliases
/// `input`'s underlying buffer.
Status GetLengthPrefixed(Slice* input, Slice* value);

/// Parses a length-prefixed byte string into an owning std::string.
Status GetLengthPrefixedString(Slice* input, std::string* value);

/// Decodes a fixed32/fixed64 directly from a raw pointer (caller
/// guarantees at least 4/8 readable bytes).
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);

/// Number of bytes the varint encoding of `value` occupies.
int VarintLength(uint64_t value);

}  // namespace rrq::util

#endif  // RRQ_UTIL_CODING_H_
