#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.h"

namespace rrq::util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (level < GetLogLevel()) return;
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  MutexLock guard(g_log_mutex);
  fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), base, line, msg.c_str());
}

}  // namespace rrq::util
