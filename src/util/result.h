#ifndef RRQ_UTIL_RESULT_H_
#define RRQ_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace rrq {

/// A Status or a value of type T. The value is accessible only when
/// `ok()`; accessing it otherwise is a programming error (asserts in
/// debug builds).
///
/// Usage:
///   Result<ElementId> r = queue->Enqueue(...);
///   if (!r.ok()) return r.status();
///   ElementId eid = *r;
template <typename T>
class Result {
 public:
  /// Constructs from a value (OK result). Implicit so functions can
  /// `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Implicit so functions can
  /// `return Status::NotFound(...)`. Constructing from an OK status
  /// is a bug (a Result must carry either a value or an error).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The error (Status::OK() when ok()).
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>); on error returns the status, on
/// success assigns the value into `lhs` (which must be declared by the
/// caller, e.g. `RRQ_ASSIGN_OR_RETURN(auto v, Compute());`).
#define RRQ_ASSIGN_OR_RETURN(lhs, expr)                            \
  RRQ_ASSIGN_OR_RETURN_IMPL_(RRQ_RESULT_CONCAT_(_rrq_result_, __LINE__), lhs, expr)

#define RRQ_RESULT_CONCAT_INNER_(a, b) a##b
#define RRQ_RESULT_CONCAT_(a, b) RRQ_RESULT_CONCAT_INNER_(a, b)
#define RRQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = *std::move(tmp)

}  // namespace rrq

#endif  // RRQ_UTIL_RESULT_H_
