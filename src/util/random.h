#ifndef RRQ_UTIL_RANDOM_H_
#define RRQ_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>

namespace rrq::util {

/// Deterministic pseudo-random generator (xorshift128+). Every source
/// of randomness in the library — failure schedules, workload
/// generators, skip-list heights — goes through an explicitly seeded
/// Rng so that test failures and benchmark runs replay exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to spread low-entropy seeds.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    auto mix = [&z]() {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    s0_ = mix();
    s1_ = mix();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random printable payload of `len` bytes (for workload generators).
  std::string Bytes(size_t len) {
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

  /// Sample from a (truncated) zipfian over [0, n) with exponent theta,
  /// used by contention-sweep benchmarks. O(n) setup avoided by
  /// rejection-free inverse-power approximation; adequate for workload
  /// skew, not for statistics.
  uint64_t Zipf(uint64_t n, double theta) {
    // Map a uniform draw through u^(1+theta) to concentrate mass at 0.
    if (theta <= 0.0) return Uniform(n);
    double u = NextDouble();
    auto idx = static_cast<uint64_t>(static_cast<double>(n) *
                                     std::pow(u, 1.0 + theta));
    return idx >= n ? n - 1 : idx;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace rrq::util

#endif  // RRQ_UTIL_RANDOM_H_
