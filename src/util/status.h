#ifndef RRQ_UTIL_STATUS_H_
#define RRQ_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>

namespace rrq {

/// Error categories used across the library. Codes are stable and are
/// part of the public API: callers dispatch on them (e.g. a Dequeue on
/// an empty queue returns kNotFound, a Dequeue that would block on a
/// write-locked element returns kBusy in strict-FIFO mode).
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,         ///< Named object or element does not exist.
  kAlreadyExists = 2,    ///< Creation of an object that already exists.
  kInvalidArgument = 3,  ///< Malformed argument or misuse of the API.
  kCorruption = 4,       ///< Stored data failed validation (CRC, format).
  kIOError = 5,          ///< Environment/file operation failed.
  kBusy = 6,             ///< Resource is locked by another transaction.
  kAborted = 7,          ///< Transaction was aborted (deadlock, kill, ...).
  kTimedOut = 8,         ///< A bounded wait expired.
  kNotConnected = 9,     ///< Operation requires an active registration.
  kUnavailable = 10,     ///< Transient failure (partition, crashed peer).
  kFailedPrecondition = 11,  ///< Object in the wrong state for this op.
  kCancelled = 12,       ///< Request was cancelled by the client.
  kInternal = 13,        ///< Invariant violation inside the library.
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (no allocation); carries a code plus a context message otherwise.
///
/// The library does not use exceptions: every fallible operation
/// returns a Status (or a Result<T>, see result.h) and callers must
/// check it. Statuses are ignorable only deliberately.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string_view message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg);
  static Status AlreadyExists(std::string_view msg);
  static Status InvalidArgument(std::string_view msg);
  static Status Corruption(std::string_view msg);
  static Status IOError(std::string_view msg);
  static Status Busy(std::string_view msg);
  static Status Aborted(std::string_view msg);
  static Status TimedOut(std::string_view msg);
  static Status NotConnected(std::string_view msg);
  static Status Unavailable(std::string_view msg);
  static Status FailedPrecondition(std::string_view msg);
  static Status Cancelled(std::string_view msg);
  static Status Internal(std::string_view msg);

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsBusy() const { return code() == StatusCode::kBusy; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsNotConnected() const { return code() == StatusCode::kNotConnected; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// The context message supplied at construction; empty for OK.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  /// "<CodeName>: <message>" (or "OK").
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK; allocated only on the error path.
  std::unique_ptr<Rep> rep_;
};

/// Two statuses are equal when their codes are equal (messages are
/// diagnostic context, not identity).
inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

/// Propagates a non-OK status to the caller. Usable in any function
/// returning Status.
#define RRQ_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::rrq::Status _rrq_status = (expr);           \
    if (!_rrq_status.ok()) return _rrq_status;    \
  } while (false)

}  // namespace rrq

#endif  // RRQ_UTIL_STATUS_H_
