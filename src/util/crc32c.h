#ifndef RRQ_UTIL_CRC32C_H_
#define RRQ_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace rrq::util::crc32c {

/// Returns the CRC-32C (Castagnoli) of data[0, n-1], continuing from
/// `init_crc` (the crc of a preceding byte range, or 0).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC-32C of data[0, n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masking for CRCs stored alongside the data they cover, so that the
/// CRC of a string containing embedded CRCs does not degenerate
/// (LevelDB/RocksDB convention).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace rrq::util::crc32c

#endif  // RRQ_UTIL_CRC32C_H_
