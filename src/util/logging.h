#ifndef RRQ_UTIL_LOGGING_H_
#define RRQ_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rrq::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum level that is actually emitted.
/// Defaults to kWarn so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one line to stderr: "[LEVEL] file:line msg". Thread-safe.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace logging_internal {

class LogLineBuilder {
 public:
  LogLineBuilder(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLineBuilder() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace logging_internal
}  // namespace rrq::util

#define RRQ_LOG(level)                                                  \
  if (::rrq::util::LogLevel::level < ::rrq::util::GetLogLevel()) {      \
  } else                                                                \
    ::rrq::util::logging_internal::LogLineBuilder(                      \
        ::rrq::util::LogLevel::level, __FILE__, __LINE__)

#endif  // RRQ_UTIL_LOGGING_H_
