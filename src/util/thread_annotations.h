#ifndef RRQ_UTIL_THREAD_ANNOTATIONS_H_
#define RRQ_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis support for the whole tree.
//
// Every mutex-guarded field in the codebase carries a GUARDED_BY
// annotation, every helper that must run under a lock carries
// REQUIRES, and every public entry point that takes a lock internally
// carries EXCLUDES. Under clang with -Wthread-safety (the
// RRQ_THREAD_SAFETY=ON CMake path, enforced in CI with
// -Werror=thread-safety) violations of the locking discipline are
// compile errors; under gcc the macros expand to nothing and the
// wrappers below compile down to the plain std primitives.
//
// This is the only file in src/ allowed to name std::mutex,
// std::shared_mutex, std::lock_guard, std::unique_lock, or
// std::condition_variable directly — scripts/check_invariants.sh
// enforces that. Everything else uses rrq::Mutex / rrq::MutexLock /
// rrq::CondVar (and rrq::SharedMutex where reader concurrency pays).
//
// See DESIGN.md §11 for the lock hierarchy and the rules for
// extending the annotations.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define RRQ_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RRQ_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPABILITY(x) RRQ_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY RRQ_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) RRQ_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) RRQ_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) RRQ_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RETURN_CAPABILITY(x) RRQ_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  RRQ_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace rrq {

class CondVar;

/// Annotated wrapper around std::mutex. The analysis tracks it as a
/// capability: fields declared GUARDED_BY(mu_) may only be touched
/// while mu_ is held, and functions declared REQUIRES(mu_) may only be
/// called with it held.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis, not the runtime) that the calling
  /// context holds this mutex when the fact cannot be proven
  /// intra-procedurally. Use sparingly; prefer REQUIRES.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over rrq::Mutex, relockable: Unlock()/Lock() allow
/// the leader/follower patterns (drop the lock across a physical sync,
/// reacquire after) while keeping the analysis informed.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. before a blocking syscall). The destructor
  /// becomes a no-op unless Lock() reacquires first.
  void Unlock() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Reacquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// Annotated reader/writer lock. The analysis distinguishes shared
/// acquisition (concurrent readers of GUARDED_BY fields) from
/// exclusive acquisition (a lone writer).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII shared (reader) lock over rrq::SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over rrq::SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to rrq::Mutex at each wait site. Waits are
/// annotated REQUIRES(mu): from the analysis's point of view the lock
/// is held across the wait (it is released and reacquired inside, which
/// the analysis need not see).
///
/// Predicate re-checking is the caller's job — use the standard loop:
///
///   rrq::MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// (A predicate-lambda overload would defeat the analysis: the lambda
/// body is analyzed as a separate function that cannot prove the lock
/// is held, so every guarded read inside it would warn.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's MutexLock.
  }

  /// Returns std::cv_status::timeout when the deadline passed (the
  /// caller re-checks its predicate either way).
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rrq

#endif  // RRQ_UTIL_THREAD_ANNOTATIONS_H_
